#include "sim/time_account.hh"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>

#include "sim/logging.hh"

namespace gasnub::sim {

namespace {

using Interval = std::pair<Tick, Tick>;
using Set = std::vector<Interval>; ///< sorted, disjoint, non-empty

/** Sort @p raw and merge overlapping/adjacent intervals. */
Set
normalize(Set raw)
{
    std::sort(raw.begin(), raw.end());
    Set out;
    for (const auto &[s, e] : raw) {
        if (!out.empty() && s <= out.back().second)
            out.back().second = std::max(out.back().second, e);
        else
            out.emplace_back(s, e);
    }
    return out;
}

Tick
sumLen(const Set &a)
{
    Tick len = 0;
    for (const auto &[s, e] : a)
        len += e - s;
    return len;
}

/** Total overlap between two sorted disjoint interval sets. */
Tick
intersectLen(const Set &a, const Set &b)
{
    Tick len = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const Tick lo = std::max(a[i].first, b[j].first);
        const Tick hi = std::min(a[i].second, b[j].second);
        if (lo < hi)
            len += hi - lo;
        if (a[i].second < b[j].second)
            ++i;
        else
            ++j;
    }
    return len;
}

/** Union of two sorted disjoint interval sets. */
Set
unionOf(const Set &a, const Set &b)
{
    Set merged;
    merged.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged));
    return normalize(std::move(merged));
}

} // namespace

TimeAccount::TimeAccount()
{
    resource("sw.overhead");
}

TimeAccount::ResId
TimeAccount::resource(const std::string &name)
{
    for (std::size_t i = 0; i < _names.size(); ++i)
        if (_names[i] == name)
            return static_cast<ResId>(i);
    _names.push_back(name);
    _busy.push_back(0);
    _stall.push_back(0);
    _intervals.emplace_back();
    return static_cast<ResId>(_names.size() - 1);
}

Tick
TimeAccount::busyTicks(const std::string &name) const
{
    for (std::size_t i = 0; i < _names.size(); ++i)
        if (_names[i] == name)
            return _busy[i];
    return 0;
}

Tick
TimeAccount::stallTicks(const std::string &name) const
{
    for (std::size_t i = 0; i < _names.size(); ++i)
        if (_names[i] == name)
            return _stall[i];
    return 0;
}

void
TimeAccount::arm()
{
    _armed = true;
    resetPoint();
}

void
TimeAccount::resetPoint()
{
    for (auto &v : _intervals)
        v.clear();
}

TimeAccount::PointAttribution
TimeAccount::finishPoint(Tick elapsed)
{
    const std::size_t n = _names.size();
    PointAttribution out;
    out.elapsed = elapsed;
    out.attributed.assign(n, 0);
    out.busy.assign(n, 0);

    // Clip each resource's captured intervals to the measured window
    // [0, elapsed) — posted writebacks can drain past the point's
    // nominal end — then merge them into disjoint coverage sets.
    std::vector<Set> cover(n);
    for (std::size_t i = 0; i < n; ++i) {
        Set clipped;
        clipped.reserve(_intervals[i].size());
        for (auto [s, e] : _intervals[i]) {
            if (s >= elapsed)
                continue;
            e = std::min(e, elapsed);
            if (e > s)
                clipped.emplace_back(s, e);
        }
        cover[i] = normalize(std::move(clipped));
        out.busy[i] = sumLen(cover[i]);
    }

    // Rank by busy time within the window, descending; ties break on
    // registration order so the result is deterministic.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (out.busy[a] != out.busy[b])
                      return out.busy[a] > out.busy[b];
                  return a < b;
              });

    // Layered attribution: each resource claims only the time not
    // already claimed by a busier one.
    Set claimed;
    for (const std::size_t r : order) {
        if (out.busy[r] == 0)
            continue;
        out.attributed[r] =
            out.busy[r] - intersectLen(cover[r], claimed);
        claimed = unionOf(claimed, cover[r]);
    }

    // Whatever nothing covers is software overhead / exposed latency.
    const Tick covered = sumLen(claimed);
    GASNUB_ASSERT(covered <= elapsed, "coverage exceeds the window");
    out.attributed[overheadRes] += elapsed - covered;

    _armed = false;
    resetPoint();
    return out;
}

void
TimeAccount::resetCumulative()
{
    std::fill(_busy.begin(), _busy.end(), 0);
    std::fill(_stall.begin(), _stall.end(), 0);
}

void
TimeAccount::mergeFrom(const TimeAccount &other)
{
    for (std::size_t i = 0; i < other._names.size(); ++i) {
        const ResId r = resource(other._names[i]);
        _busy[r] += other._busy[i];
        _stall[r] += other._stall[i];
    }
}

TimeAccountStat::TimeAccountStat(stats::Group *group, std::string name,
                                 std::string desc, TimeAccount *acct)
    : StatBase(group, std::move(name), std::move(desc)), _acct(acct)
{
    GASNUB_ASSERT(_acct != nullptr, "TimeAccountStat needs an account");
}

void
TimeAccountStat::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << _acct->names().size() << " # " << desc()
       << " (resources)\n";
    for (std::size_t i = 0; i < _acct->names().size(); ++i) {
        const auto r = static_cast<TimeAccount::ResId>(i);
        if (_acct->busyTicks(r) == 0 && _acct->stallTicks(r) == 0)
            continue;
        os << "  " << name() << '[' << _acct->names()[i] << "] busy="
           << _acct->busyTicks(r) << " stall=" << _acct->stallTicks(r)
           << "\n";
    }
}

void
TimeAccountStat::printJson(std::ostream &os) const
{
    os << "{\"name\":\"" << name()
       << "\",\"type\":\"timeAccount\",\"desc\":\"" << desc()
       << "\",\"resources\":[";
    for (std::size_t i = 0; i < _acct->names().size(); ++i) {
        const auto r = static_cast<TimeAccount::ResId>(i);
        if (i)
            os << ',';
        os << "{\"name\":\"" << _acct->names()[i]
           << "\",\"busyTicks\":" << _acct->busyTicks(r)
           << ",\"stallTicks\":" << _acct->stallTicks(r) << "}";
    }
    os << "]}";
}

void
TimeAccountStat::reset()
{
    _acct->resetCumulative();
}

void
TimeAccountStat::mergeFrom(const StatBase &other)
{
    const auto *peer = dynamic_cast<const TimeAccountStat *>(&other);
    GASNUB_ASSERT(peer != nullptr, "stat merge type mismatch at '",
                  name(), "' / '", other.name(), "'");
    _acct->mergeFrom(*peer->_acct);
}

} // namespace gasnub::sim
