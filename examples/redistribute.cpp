/**
 * @file
 * HPF array assignment between distributions — the communication the
 * Fx compiler generates (paper Section 2.1) — planned, inspected,
 * and executed on a simulated machine.
 *
 *   ./redistribute [dec8400|t3d|t3e]
 */

#include <cstdio>
#include <cstring>

#include "core/redistribution.hh"

using namespace gasnub;

int
main(int argc, char **argv)
{
    machine::SystemKind kind = machine::SystemKind::CrayT3D;
    if (argc > 1 && std::strcmp(argv[1], "dec8400") == 0)
        kind = machine::SystemKind::Dec8400;
    else if (argc > 1 && std::strcmp(argv[1], "t3e") == 0)
        kind = machine::SystemKind::CrayT3E;

    std::printf("== HPF redistribution on the %s ==\n\n",
                machine::systemName(kind).c_str());

    // REAL A(2**18), B(2**18)
    // !HPF$ DISTRIBUTE A(BLOCK), B(CYCLIC)
    // B = A
    core::Distribution a;
    a.kind = core::DistKind::Block;
    a.elements = 1 << 18;
    a.procs = 4;
    core::Distribution b = a;
    b.kind = core::DistKind::Cyclic;

    const core::RedistPlan plan = core::planRedistribution(a, b);
    std::printf("assignment B(CYCLIC) = A(BLOCK), %llu words on %d "
                "processors:\n",
                static_cast<unsigned long long>(a.elements), a.procs);
    std::printf("  %zu transfers, %llu words stay local, %llu words "
                "cross nodes\n",
                plan.transfers.size(),
                static_cast<unsigned long long>(plan.localWords),
                static_cast<unsigned long long>(plan.remoteWords));
    std::printf("  first transfers of the plan:\n");
    for (std::size_t i = 0; i < plan.transfers.size() && i < 5; ++i) {
        const auto &t = plan.transfers[i];
        std::printf("    p%d -> p%d: %6llu words, src stride %llu, "
                    "dst stride %llu\n",
                    t.src, t.dst,
                    static_cast<unsigned long long>(t.words),
                    static_cast<unsigned long long>(t.srcStride),
                    static_cast<unsigned long long>(t.dstStride));
    }

    machine::Machine m(kind, 4);
    const core::RedistResult r = core::executeRedistribution(m, plan);
    std::printf("\nexecuted with the machine's native method: "
                "%.2f ms, %.0f MB/s\n",
                static_cast<double>(r.elapsed) / 1e9, r.mbs);
    return 0;
}
