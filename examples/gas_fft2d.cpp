/**
 * @file
 * The Section 7 distributed 2D-FFT written against the gas runtime:
 * global pointers into a symmetric heap, strided rput/rget for the
 * transposes, Method::Auto picking the machine's preferred transfer
 * implementation, and verified numerics (the data really moves
 * through the runtime's functional copies).  Compares timing with
 * the hand-written fft::DistributedFft2d.
 *
 *   ./gas_fft2d [dec8400|t3d|t3e] [n]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fft/fft2d_dist.hh"
#include "gas/factory.hh"
#include "gas/fft2d.hh"
#include "gas/runtime.hh"
#include "machine/machine.hh"
#include "sim/units.hh"

using namespace gasnub;

namespace {

machine::SystemKind
parseKind(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "dec8400") == 0)
        return machine::SystemKind::Dec8400;
    if (argc > 1 && std::strcmp(argv[1], "t3d") == 0)
        return machine::SystemKind::CrayT3D;
    return machine::SystemKind::CrayT3E;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto kind = parseKind(argc, argv);
    const std::uint64_t n =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
    std::printf("== gas-runtime 2D-FFT (%llu x %llu) on the %s ==\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n),
                machine::systemName(kind).c_str());

    // A machine and a runtime over it.  Two regions per node gives
    // the exact data layout of the hand-written kernel.
    machine::Machine m(kind, 4);
    gas::RuntimeConfig rcfg;
    rcfg.regionsPerNode = 2;
    gas::Runtime rt(m, rcfg);

    // Arm Method::Auto with this machine's measured characterization
    // (a small grid; real deployments load saved surfaces with
    // core::loadPlannerDir).
    core::CharacterizeConfig ccfg;
    ccfg.workingSets = {64_KiB, 1_MiB};
    ccfg.strides = {2, 8, static_cast<std::uint64_t>(n)};
    ccfg.capBytes = 256_KiB;
    core::TransferPlanner planner;
    for (auto &o : gas::characterizeOptions(m, ccfg))
        planner.addOption(std::move(o));
    rt.setPlanner(std::move(planner));

    // Run with verified numerics: every transpose element moves
    // through the runtime's rput/rget payload copies.
    gas::Fft2d app(rt);
    gas::Fft2dConfig cfg;
    cfg.n = n;
    cfg.verifyNumerics = true;
    const fft::Fft2dResult r = app.run(cfg);
    std::printf("Auto chose:    %s\n",
                remote::methodName(app.transposeMethod()));
    std::printf("overall        %8.1f MFlop/s\n", r.overallMFlops);
    std::printf("compute        %8.1f MFlop/s\n", r.computeMFlops);
    std::printf("communication  %8.1f MB/s\n", r.commMBs);
    std::printf("max FFT error  %g\n\n", r.maxError);
    if (r.maxError > 1e-6) {
        std::printf("NUMERICS MISMATCH\n");
        return 1;
    }

    // The hand-written kernel on a fresh machine, for comparison.
    machine::Machine ref(kind, 4);
    fft::DistributedFft2d handwritten(ref);
    fft::Fft2dConfig hcfg;
    hcfg.n = n;
    const fft::Fft2dResult h = handwritten.run(hcfg);
    std::printf("vs. hand-written fft::DistributedFft2d:\n");
    std::printf("  total   %llu vs %llu ticks (%+.2f%%)\n",
                static_cast<unsigned long long>(r.totalTicks),
                static_cast<unsigned long long>(h.totalTicks),
                100.0 * (static_cast<double>(r.totalTicks) -
                         static_cast<double>(h.totalTicks)) /
                    static_cast<double>(h.totalTicks));
    std::printf("  comm    %llu vs %llu ticks (%+.2f%%)\n",
                static_cast<unsigned long long>(r.commTicks),
                static_cast<unsigned long long>(h.commTicks),
                100.0 * (static_cast<double>(r.commTicks) -
                         static_cast<double>(h.commTicks)) /
                    static_cast<double>(h.commTicks));
    return 0;
}
