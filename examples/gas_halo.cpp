/**
 * @file
 * Halo-exchange stencil on the gas runtime — the kind of workload the
 * raw engine interface could not express cleanly: a column-block
 * distributed n x n grid where every iteration ships whole grid
 * *columns* (strided rput of n elements at stride row-length) to the
 * neighbours' halo columns, with Method::Auto deciding per call how
 * each machine moves them (deposit / fetch / coherent pull).
 *
 *   ./gas_halo [dec8400|t3d|t3e] [--n N] [--iters K] [--surfaces DIR]
 *
 * With --surfaces DIR the planner loads saved characterization
 * surfaces (tools/characterize ... --out DIR/<benchmark>.surface);
 * otherwise it measures a small grid inline.  Data really moves:
 * after every exchange the halo columns are checked against the
 * neighbour's edge columns, and the stencil runs on the payload.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/planner_io.hh"
#include "fft/fft2d_dist.hh"
#include "gas/factory.hh"
#include "gas/runtime.hh"
#include "machine/machine.hh"
#include "sim/logging.hh"
#include "sim/units.hh"

using namespace gasnub;

namespace {

machine::SystemKind
parseKind(const char *s)
{
    if (std::strcmp(s, "dec8400") == 0)
        return machine::SystemKind::Dec8400;
    if (std::strcmp(s, "t3d") == 0)
        return machine::SystemKind::CrayT3D;
    if (std::strcmp(s, "t3e") == 0)
        return machine::SystemKind::CrayT3E;
    GASNUB_FATAL("unknown machine '", s,
                 "'; expected dec8400, t3d or t3e");
}

} // namespace

int
main(int argc, char **argv)
{
    machine::SystemKind kind = machine::SystemKind::CrayT3E;
    std::uint64_t n = 256;
    int iters = 4;
    std::string surfaces;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc)
            n = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc)
            iters = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--surfaces") == 0 &&
                 i + 1 < argc)
            surfaces = argv[++i];
        else
            kind = parseKind(argv[i]);
    }

    machine::Machine m(kind, 4);
    const int procs = m.numNodes();
    GASNUB_ASSERT(n % procs == 0, "n must divide the node count");
    const std::uint64_t cols_per = n / procs;
    const std::uint64_t row_words = cols_per + 2; // two halo columns
    std::printf("== gas halo exchange: %llu x %llu grid, %d nodes "
                "(%llu columns each) on the %s ==\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n), procs,
                static_cast<unsigned long long>(cols_per),
                machine::systemName(kind).c_str());

    gas::Runtime rt(m);
    if (!surfaces.empty()) {
        std::printf("planner: surfaces from '%s'\n", surfaces.c_str());
        rt.setPlanner(core::loadPlannerDir(surfaces));
    } else {
        std::printf("planner: inline characterization\n");
        core::CharacterizeConfig ccfg;
        ccfg.workingSets = {64_KiB, 1_MiB};
        ccfg.strides = {2, 8, row_words};
        ccfg.capBytes = 256_KiB;
        core::TransferPlanner planner;
        for (auto &o : gas::characterizeOptions(m, ccfg))
            planner.addOption(std::move(o));
        rt.setPlanner(std::move(planner));
    }

    // Node p owns grid columns [p*cols_per, (p+1)*cols_per), stored
    // as n rows of (cols_per + 2) words; local columns 0 and
    // cols_per+1 are the halos.  word(row, col) = row*row_words+col.
    gas::GlobalArray grid = rt.allocate(n * row_words);
    const auto word = [row_words](std::uint64_t r, std::uint64_t c) {
        return r * row_words + c;
    };
    for (NodeId p = 0; p < procs; ++p) {
        double *d = grid.data(p);
        for (std::uint64_t r = 0; r < n; ++r)
            for (std::uint64_t c = 1; c <= cols_per; ++c) {
                const std::uint64_t g = p * cols_per + (c - 1);
                d[word(r, c)] =
                    (r == 0 || r == n - 1 || g == 0 || g == n - 1)
                        ? 1.0
                        : 0.0;
            }
    }

    // One grid column: n elements, one word each, at row stride.
    gas::Strided col;
    col.words = n;
    col.srcStride = row_words;
    col.dstStride = row_words;
    col.elemWords = 1;

    const double compute_mbs = fft::localTransposeMBs(kind);
    std::vector<double> next(n * row_words);
    for (int it = 0; it < iters; ++it) {
        // Exchange: edge columns to the neighbours' halos, one-sided.
        gas::Handle last{};
        for (NodeId p = 0; p < procs; ++p) {
            if (p > 0)
                last = rt.rput_strided(grid.on(p, word(0, 1)),
                                       grid.on(p - 1,
                                               word(0, cols_per + 1)),
                                       col);
            if (p < procs - 1)
                last = rt.rput_strided(grid.on(p, word(0, cols_per)),
                                       grid.on(p + 1, word(0, 0)),
                                       col);
        }
        const Tick synced = rt.barrier();

        // The halos must now hold the neighbours' edge columns.
        for (NodeId p = 0; p + 1 < procs; ++p) {
            const double *d = grid.data(p);
            const double *r = grid.data(p + 1);
            for (std::uint64_t row = 0; row < n; ++row) {
                GASNUB_ASSERT(d[word(row, cols_per + 1)] ==
                                  r[word(row, 1)],
                              "right halo of node ", p, " is stale");
                GASNUB_ASSERT(r[word(row, 0)] ==
                                  d[word(row, cols_per)],
                              "left halo of node ", p + 1,
                              " is stale");
            }
        }

        // Five-point Jacobi sweep on the payload; the black-box time
        // charge uses the machine's measured local copy rate.
        double delta = 0;
        for (NodeId p = 0; p < procs; ++p) {
            double *d = grid.data(p);
            for (std::uint64_t r = 1; r + 1 < n; ++r)
                for (std::uint64_t c = 1; c <= cols_per; ++c) {
                    const std::uint64_t g = p * cols_per + (c - 1);
                    if (g == 0 || g == n - 1) {
                        next[word(r, c)] = d[word(r, c)];
                        continue;
                    }
                    next[word(r, c)] =
                        0.25 * (d[word(r - 1, c)] +
                                d[word(r + 1, c)] +
                                d[word(r, c - 1)] +
                                d[word(r, c + 1)]);
                    delta += std::abs(next[word(r, c)] -
                                      d[word(r, c)]);
                }
            for (std::uint64_t r = 1; r + 1 < n; ++r)
                for (std::uint64_t c = 1; c <= cols_per; ++c)
                    d[word(r, c)] = next[word(r, c)];
            mem::MemoryHierarchy &h = m.node(p);
            h.stallUntil(h.now() +
                         ticksForBytes(n * cols_per * 6 * wordBytes,
                                       compute_mbs));
        }
        const Tick done = rt.barrier();
        std::printf("iter %d: method=%-13s exchange@%.3f ms  "
                    "step@%.3f ms  delta=%.3f\n", it,
                    remote::methodName(last.method),
                    static_cast<double>(synced) * 1e-9,
                    static_cast<double>(done) * 1e-9, delta);
    }

    std::printf("\nhalo checks passed; gas runtime stats:\n\n");
    rt.statsGroup().dump(std::cout);
    return 0;
}
