/**
 * @file
 * The application kernel of the paper (Section 7): a distributed
 * 2D-FFT in four steps — row FFTs, transpose, column FFTs, transpose
 * — on 4 processors, with real numerics validated against a serial
 * reference transform.
 *
 *   ./fft2d_app [dec8400|t3d|t3e] [n]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fft/fft2d_dist.hh"

using namespace gasnub;

int
main(int argc, char **argv)
{
    machine::SystemKind kind = machine::SystemKind::CrayT3E;
    if (argc > 1 && std::strcmp(argv[1], "dec8400") == 0)
        kind = machine::SystemKind::Dec8400;
    else if (argc > 1 && std::strcmp(argv[1], "t3d") == 0)
        kind = machine::SystemKind::CrayT3D;
    std::uint64_t n = 256;
    if (argc > 2)
        n = std::strtoull(argv[2], nullptr, 10);

    std::printf("== 2D-FFT (%llu x %llu) on 4 processors of the "
                "%s ==\n\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n),
                machine::systemName(kind).c_str());

    machine::Machine m(kind, 4);
    fft::DistributedFft2d app(m);
    fft::Fft2dConfig cfg;
    cfg.n = n;
    cfg.verifyNumerics = n <= 256; // the reference DFT pass is O(n^2)
    const fft::Fft2dResult r = app.run(cfg);

    std::printf("phase breakdown (simulated time):\n");
    std::printf("  local 1D FFTs : %8.2f ms\n",
                static_cast<double>(r.computeTicks) / 1e9);
    std::printf("  transposes    : %8.2f ms  (%llu remote bytes)\n",
                static_cast<double>(r.commTicks) / 1e9,
                static_cast<unsigned long long>(r.remoteBytes));
    std::printf("  total         : %8.2f ms\n\n",
                static_cast<double>(r.totalTicks) / 1e9);

    std::printf("rates (the paper's Figures 15-17):\n");
    std::printf("  overall application : %7.1f MFlop/s\n",
                r.overallMFlops);
    std::printf("  local computation   : %7.1f MFlop/s\n",
                r.computeMFlops);
    std::printf("  communication       : %7.1f MByte/s\n\n",
                r.commMBs);

    if (cfg.verifyNumerics) {
        std::printf("numerics vs serial reference FFT: max error "
                    "%.3e %s\n",
                    r.maxError, r.maxError < 1e-8 ? "(OK)" : "(BAD)");
        return r.maxError < 1e-8 ? 0 : 1;
    }
    return 0;
}
