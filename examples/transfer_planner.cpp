/**
 * @file
 * The compiler scenario of the paper (Sections 2.1 and 4.1): a
 * parallelizing compiler must pick the cheapest implementation of an
 * array-assignment communication step.  We characterize every
 * implementation option the Cray T3E offers (shmem_iget vs
 * shmem_iput, stride on the gather or the scatter side), then query
 * the planner for a range of strides and show that it reproduces the
 * paper's back-end rules:
 *
 *   "On the T3E, pulling data seems to work equally well (odd
 *    strides) or better (even strides) than pushing data."
 */

#include <cstdio>
#include <iostream>

#include "core/characterizer.hh"
#include "core/planner.hh"
#include "machine/machine.hh"
#include "sim/units.hh"

using namespace gasnub;

int
main()
{
    std::printf("== transfer_planner: choosing iget vs iput on the "
                "Cray T3E ==\n\n");
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    core::Characterizer c(m);

    core::CharacterizeConfig cfg;
    cfg.workingSets = {2_MiB};
    cfg.strides = {1, 2, 3, 4, 5, 8, 15, 16, 31, 32};
    cfg.capBytes = 2_MiB;

    // Implementation options of a strided communication step.
    core::TransferPlanner planner;
    planner.addOption(
        {"shmem_iget (strided gather)", remote::TransferMethod::Fetch,
         true,
         c.remoteTransfer(remote::TransferMethod::Fetch, true, cfg)});
    planner.addOption(
        {"shmem_iput (strided scatter)",
         remote::TransferMethod::Deposit, false,
         c.remoteTransfer(remote::TransferMethod::Deposit, false,
                          cfg)});

    planner.option(0).surface->print(std::cout);
    planner.option(1).surface->print(std::cout);

    std::printf("planner decisions for a 2 MB communication "
                "working set:\n");
    std::printf("%8s %-32s %10s\n", "stride", "chosen primitive",
                "MB/s");
    for (std::uint64_t stride : cfg.strides) {
        core::TransferQuery q;
        q.bytes = 2_MiB;
        q.wsBytes = 2_MiB;
        q.stride = stride;
        const core::Plan p = planner.best(q);
        std::printf("%8llu %-32s %10.0f\n",
                    static_cast<unsigned long long>(stride),
                    p.label.c_str(), p.predictedMBs);
    }
    std::printf("\nEven strides pick the fetch model (the scatter "
                "side would hit the\ndestination bank parity); odd "
                "strides are a toss-up — exactly the\npaper's rule "
                "for the Fx T3E back-end.\n");

    // Act II: the Section 9 hypothesis on the DEC 8400 — blocking a
    // big strided pull so each chunk stays in the producer's caches.
    std::printf("\n== blocked pulls on the DEC 8400 ==\n\n");
    machine::Machine dec(machine::SystemKind::Dec8400, 4);
    core::Characterizer cd(dec);
    core::CharacterizeConfig pcfg;
    pcfg.workingSets = {1_MiB, 16_MiB};
    pcfg.strides = {1, 16};
    pcfg.capBytes = 12_MiB;
    core::Surface pull = cd.remoteTransfer(
        remote::TransferMethod::CoherentPull, true, pcfg);
    pull.print(std::cout);

    core::TransferPlanner dp;
    dp.addOption({"direct pull", remote::TransferMethod::CoherentPull,
                  true, pull, 0});
    dp.addOption({"L3-blocked pull",
                  remote::TransferMethod::CoherentPull, true, pull,
                  1_MiB});
    core::TransferQuery dq;
    dq.bytes = 16_MiB;
    dq.wsBytes = 16_MiB;
    dq.stride = 16;
    const core::Plan bp = dp.best(dq);
    std::printf("16 MB strided transfer: choose '%s' at %.0f MB/s "
                "(direct: %.0f)\n",
                bp.label.c_str(), bp.predictedMBs,
                dp.predictAll(dq)[0]);
    std::printf("\n\"If a global communication operation can be "
                "partitioned into\nsub-blocks, cache to cache "
                "transfers might perform better than remote\nmemory "
                "copies\" — quantified, as Section 9 asks.\n");
    return 0;
}
