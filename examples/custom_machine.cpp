/**
 * @file
 * Using gasnub as a design-exploration tool: define a hypothetical
 * machine — a "T3E with a board-level L3 cache" — and compare its
 * local memory characterization against the three paper machines.
 *
 * This is the paper's closing argument in action: "realistic models
 * based on measurement provide the accurate understanding of memory
 * system performance" — here the measurements come from a simulated
 * design before anyone builds it.
 */

#include <cstdio>
#include <iostream>

#include "kernels/kernels.hh"
#include "machine/configs.hh"
#include "mem/hierarchy.hh"
#include "sim/units.hh"

using namespace gasnub;

namespace {

/** A T3E node augmented with a DEC-style 4 MB board cache. */
mem::HierarchyConfig
t3eWithL3()
{
    mem::HierarchyConfig h = machine::crayT3eNode("t3e+l3");

    mem::LevelConfig l3;
    l3.cache.name = "t3e+l3.l3";
    l3.cache.sizeBytes = 4_MiB;
    l3.cache.lineBytes = 64;
    l3.cache.assoc = 1;
    l3.cache.writePolicy = mem::WritePolicy::WriteBack;
    l3.cache.allocPolicy = mem::AllocPolicy::ReadWriteAllocate;
    l3.timing.hitNs = 45;
    l3.timing.hitOccupancyNs = 55;
    l3.timing.fillOccupancyNs = 55;
    h.levels.push_back(l3);

    // The board cache sits in front of DRAM; off-chip accesses now
    // start at the new last level.
    h.windowFromLevel = 2;
    return h;
}

void
row(const char *label, mem::MemoryHierarchy &m, std::uint64_t ws)
{
    std::printf("%-12s %8s", label, formatSize(ws).c_str());
    for (std::uint64_t stride : {1ull, 8ull, 32ull}) {
        kernels::KernelParams p;
        p.wsBytes = ws;
        p.stride = stride;
        p.capBytes = 8_MiB;
        std::printf("%9.0f", kernels::loadSum(m, p).mbs);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== custom_machine: would an L3 cache have helped "
                "the T3E? ==\n\n");
    std::printf("%-12s %8s %9s %9s %9s   (load MB/s)\n", "machine",
                "ws", "stride1", "stride8", "stride32");

    mem::MemoryHierarchy t3e(machine::crayT3eNode());
    mem::MemoryHierarchy hybrid(t3eWithL3());
    mem::MemoryHierarchy dec(machine::dec8400Node());

    for (std::uint64_t ws : {64_KiB, 1_MiB, 16_MiB}) {
        row("T3E", t3e, ws);
        row("T3E+L3", hybrid, ws);
        row("DEC 8400", dec, ws);
        std::printf("\n");
    }

    std::printf("At 1 MB working sets the hypothetical board cache "
                "multiplies strided\nbandwidth (the 8400's L3 "
                "advantage), while at 16 MB the stream units\nstill "
                "win for contiguous accesses — the design tension "
                "the paper\nattributes to 'a cache focus on the DEC "
                "machine and a streams focus\non the Cray "
                "machines'.\n");
    return 0;
}
