/**
 * @file
 * Quickstart: build one of the paper's machines, measure a few
 * memory-system bandwidths, characterize a small surface, and ask
 * the transfer planner for a decision.
 *
 *   ./quickstart [dec8400|t3d|t3e]
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/characterizer.hh"
#include "core/planner.hh"
#include "kernels/remote_kernels.hh"
#include "machine/machine.hh"
#include "sim/units.hh"

using namespace gasnub;

namespace {

machine::SystemKind
parseKind(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "dec8400") == 0)
        return machine::SystemKind::Dec8400;
    if (argc > 1 && std::strcmp(argv[1], "t3d") == 0)
        return machine::SystemKind::CrayT3D;
    return machine::SystemKind::CrayT3E;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto kind = parseKind(argc, argv);
    std::printf("== gasnub quickstart on the %s ==\n\n",
                machine::systemName(kind).c_str());

    // 1. Build a 4-processor machine (the paper's configuration).
    machine::Machine m(kind, 4);

    // 2. Measure a few local bandwidths with the Load-Sum kernel.
    std::printf("Local load bandwidth (one processor):\n");
    for (std::uint64_t ws : {4_KiB, 64_KiB, 8_MiB}) {
        for (std::uint64_t stride : {1ull, 16ull}) {
            kernels::KernelParams p;
            p.wsBytes = ws;
            p.stride = stride;
            const auto r = kernels::loadSumOn(m, 0, p);
            std::printf("  ws=%-5s stride=%-3llu -> %7.1f MB/s\n",
                        formatSize(ws).c_str(),
                        static_cast<unsigned long long>(stride),
                        r.mbs);
        }
    }

    // 3. Characterize a small remote-transfer surface.
    core::Characterizer c(m);
    core::CharacterizeConfig cfg;
    cfg.workingSets = {64_KiB, 1_MiB};
    cfg.strides = {1, 2, 3, 8};
    cfg.capBytes = 1_MiB;
    const auto method = m.nativeMethod();
    const bool stride_on_src =
        method != remote::TransferMethod::Deposit;
    core::Surface s = c.remoteTransfer(method, stride_on_src, cfg,
                                       0, kind ==
                                       machine::SystemKind::CrayT3D
                                           ? 2 : 1);
    std::printf("\n");
    s.print(std::cout);

    // 4. Ask the planner how to move 1 MB with stride 8.
    core::TransferPlanner planner;
    planner.addOption({remote::methodName(method), method,
                       stride_on_src, s});
    core::TransferQuery q;
    q.bytes = 1_MiB;
    q.wsBytes = 1_MiB;
    q.stride = 8;
    const core::Plan plan = planner.best(q);
    std::printf("planner: move 1 MB at stride 8 via '%s' "
                "(%.0f MB/s, %.2f ms predicted)\n",
                plan.label.c_str(), plan.predictedMBs,
                plan.predictedSeconds * 1e3);
    return 0;
}
