/**
 * @file
 * Regenerates Figure 16: local computation performance of the 2D-FFT
 * benchmark on 4 processors (vendor-library 1D FFTs).
 */

#include "fft_common.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 16",
                  "2D-FFT local computation performance, 4 "
                  "processors");
    auto sweep = bench::runFftSweep(obs.jobs);
    bench::printFftTable(sweep, "MFlop/s total",
                         [](const fft::Fft2dResult &r) {
                             return r.computeMFlops;
                         });
    const auto &t3d = sweep[0].results;
    const auto &dec = sweep[1].results;
    const auto &t3e = sweep[2].results;
    bench::compare({
        {"8400 / T3D compute ratio @256 (paper >2.5)", 2.5,
         dec[3].computeMFlops / t3d[3].computeMFlops},
        {"T3E per-processor peak (MFlop/s)", 200,
         t3e[5].computeMFlops / 4.0},
        {"T3D falloff 1024 vs 256 (ratio)", 0.66,
         t3d[5].computeMFlops / t3d[3].computeMFlops},
        {"8400 level 1024 vs 256 (ratio)", 1.0,
         dec[5].computeMFlops / dec[3].computeMFlops},
    });
    return 0;
}
