/**
 * @file
 * AAPC schedule comparison (paper Section 6 / footnote 1): the same
 * all-to-all volume under a congestion-free round schedule, a
 * hypercube-style pairwise exchange, and a naive hotspot-prone
 * ordering.
 */

#include "bench_util.hh"
#include "remote/aapc.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Section 6)",
                  "AAPC schedules on an 8-processor Cray T3E");
    machine::Machine m(machine::SystemKind::CrayT3E, 8);

    std::printf("%-16s %12s %12s %10s\n", "schedule",
                "contig MB/s", "strided MB/s", "rounds");
    for (auto sched : {remote::AapcSchedule::ShiftRing,
                       remote::AapcSchedule::PairwiseXor,
                       remote::AapcSchedule::NaiveOrdered}) {
        remote::AapcConfig cfg;
        cfg.schedule = sched;
        cfg.method = remote::TransferMethod::Fetch;
        cfg.wordsPerPair = 4096;
        m.resetAll();
        const auto contig =
            runAapc(m.remote(), 8, cfg, remote::defaultAapcPlacement());
        cfg.srcStride = 16;
        m.resetAll();
        const auto strided =
            runAapc(m.remote(), 8, cfg, remote::defaultAapcPlacement());
        std::printf("%-16s %12.0f %12.0f %10d\n",
                    remote::aapcScheduleName(sched), contig.mbs,
                    strided.mbs, contig.rounds);
    }
    std::printf("\nRound-structured schedules keep the pairwise "
                "exchanges spread over\ndisjoint links and memory "
                "systems; the naive order serializes on\nhotspot "
                "destinations.\n");
    return 0;
}
