/**
 * @file
 * Torus congestion study (paper Section 5.6): "the remote copy
 * transfer performance is expected to scale up to a 512 processor
 * (8 x 8 x 8) torus, before bisection limits become visible in
 * transposes (i.e., AAPC patterns)".
 *
 * Two traffic patterns at increasing T3E sizes, driven by the
 * discrete-event kernel so all flows interleave in global time
 * order:
 *
 *  - neighbour: node p streams to p+1 on its ring (disjoint links);
 *  - bisection: node p streams to the node half a machine away
 *    (every packet crosses the bisection).
 */

#include <algorithm>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"

namespace {

using namespace gasnub;

/** Per-node effective bandwidth of one pattern, in MB/s. */
double
runPattern(int procs, bool bisection)
{
    noc::Torus torus(machine::t3eTorusConfig(procs));
    sim::EventQueue q;
    const int packets = 256;
    const std::uint32_t payload = 64;

    std::vector<int> remaining(procs, packets);
    Tick last_arrival = 0;

    // Each node is a packet source paced by its own injections; the
    // event queue merges all sources in time order.
    std::function<void(NodeId)> send_next = [&](NodeId p) {
        if (remaining[p] == 0)
            return;
        --remaining[p];
        const NodeId dst =
            bisection ? (p + procs / 2) % procs : (p + 1) % procs;
        const noc::PacketResult pr =
            torus.send(p, dst, payload, q.now());
        last_arrival = std::max(last_arrival, pr.arrived);
        if (remaining[p] > 0) {
            q.schedule(std::max(pr.injected + 1, q.now() + 1),
                       [&send_next, p] { send_next(p); });
        }
    };
    for (NodeId p = 0; p < procs; ++p)
        q.schedule(0, [&send_next, p] { send_next(p); });
    q.run();

    const double total_bytes =
        static_cast<double>(procs) * packets * payload;
    return total_bytes * 1e6 / static_cast<double>(last_arrival) /
           procs;
}

} // namespace

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Section 5.6)",
                  "T3E torus: neighbour vs bisection (AAPC-style) "
                  "traffic");
    std::printf("%8s %14s %14s %16s\n", "procs", "neighbour MB/s",
                "bisection MB/s", "bisection/nbr");
    for (int procs : {8, 64, 216, 512}) {
        const double nbr = runPattern(procs, false);
        const double bis = runPattern(procs, true);
        std::printf("%8d %14.0f %14.0f %15.2f%%\n", procs, nbr, bis,
                    100.0 * bis / nbr);
    }
    std::printf("\nNeighbour traffic scales flat with machine size; "
                "cross-machine\ntraffic decays as the per-node share "
                "of the bisection shrinks —\nthe limit the paper "
                "expects transposes to hit beyond 512 PEs.\n");
    return 0;
}
