/**
 * @file
 * The indexed column of the copy-transfer model (paper Sections 4 and
 * 6): gather bandwidth as a function of index locality — the sparse-
 * matrix counterpart of the strided figures.
 */

#include "bench_util.hh"
#include "kernels/indexed.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Sections 4, 6)",
                  "indexed (gather) bandwidth vs index locality, "
                  "2 MB working set");
    std::printf("%-12s %12s %12s %12s %12s\n", "machine",
                "contiguous", "mostly-seq", "blocked", "random");
    for (auto kind :
         {machine::SystemKind::Dec8400, machine::SystemKind::CrayT3D,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        kernels::KernelParams lp;
        lp.wsBytes = 2_MiB;
        lp.capBytes = 2_MiB;
        const double contig = kernels::loadSumOn(m, 0, lp).mbs;
        double v[3];
        int i = 0;
        for (auto pat : {kernels::IndexPattern::MostlySequential,
                         kernels::IndexPattern::Blocked,
                         kernels::IndexPattern::Random}) {
            kernels::IndexedParams p;
            p.wsBytes = 2_MiB;
            p.capBytes = 2_MiB;
            p.pattern = pat;
            v[i++] = kernels::indexedLoadSum(m, 0, p).mbs;
        }
        std::printf("%-12s %12.0f %12.0f %12.0f %12.0f\n",
                    machine::systemName(kind).c_str(), contig, v[0],
                    v[1], v[2]);
    }
    std::printf("\nIndexed accesses sit between the contiguous ridge "
                "and the strided\nplateau according to their "
                "locality; random gathers defeat every\nstream unit "
                "and pay the full latency-bound rate.\n");
    return 0;
}
