/**
 * @file
 * Regenerates Figure 12: DEC 8400 remote copy transfer (p0 <- p1) at
 * a 65 MB working set, for different strides.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 12",
                  "DEC 8400 remote copy transfer p1 -> p0, 65 MB");
    machine::Machine m(machine::SystemKind::Dec8400, 4);
    auto cfg = bench::copySliceGrid(12_MiB);
    core::Surface s = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::CoherentPull,
                                true, 1, 0),
        cfg, obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"contiguous (MB/s)", 140, s.at(65 * 1_MiB, 1)},
        {"strided @16", 22, s.at(65 * 1_MiB, 16)},
        {"strided @64", 22, s.at(65 * 1_MiB, 64)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
