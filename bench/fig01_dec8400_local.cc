/**
 * @file
 * Regenerates Figure 1: load bandwidth of the DEC 8400 for different
 * access patterns (strides) and working sets; one processor active.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 1",
                  "DEC 8400 local load bandwidth (stride x working "
                  "set), one processor");
    machine::Machine m(machine::SystemKind::Dec8400, 4);
    core::Surface s = bench::sweep(
        m, core::SweepSpec::localLoads(0),
        bench::surfaceGrid(bench::fullRun(argc, argv), 128_MiB,
                              12_MiB),
        obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"L1 plateau (MB/s)", 1100, s.at(4_KiB, 1)},
        {"L2 plateau, strided", 700, s.at(64_KiB, 8)},
        {"L3 contiguous", 600, s.at(1_MiB, 1)},
        {"L3 strided", 120, s.at(1_MiB, 16)},
        {"DRAM contiguous", 150, s.at(16_MiB, 1)},
        {"DRAM strided", 28, s.at(16_MiB, 32)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
