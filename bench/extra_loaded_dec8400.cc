/**
 * @file
 * The loaded-machine experiment of Section 5.1: all four processors
 * of the DEC 8400 run the Load-Sum benchmark concurrently.  The paper
 * measured a bandwidth decrease of about 8% for contiguous and 25%
 * for strided DRAM accesses; caches are unaffected.
 */

#include "bench_util.hh"
#include "kernels/remote_kernels.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Section 5.1)",
                  "DEC 8400 under full load: 4 processors running "
                  "Load-Sum concurrently");
    machine::Machine m(machine::SystemKind::Dec8400, 4);

    std::printf("%-28s %10s %10s %8s\n", "configuration", "idle",
                "loaded", "change");
    std::vector<bench::PaperRef> refs;
    struct Case
    {
        const char *what;
        std::uint64_t ws;
        std::uint64_t stride;
        double paper_drop;
    };
    for (const Case &c :
         {Case{"L2 cache, strided", 64_KiB, 8, 0.0},
          Case{"DRAM contiguous", 8_MiB, 1, 0.08},
          Case{"DRAM strided", 8_MiB, 16, 0.25}}) {
        kernels::KernelParams p;
        p.wsBytes = c.ws;
        p.stride = c.stride;
        p.capBytes = 8_MiB;
        const double idle = kernels::loadSumOn(m, 0, p).mbs;
        const double loaded = kernels::loadSumLoaded(m, p).mbs;
        std::printf("%-28s %10.1f %10.1f %7.1f%%\n", c.what, idle,
                    loaded, 100.0 * (loaded - idle) / idle);
        refs.push_back({c.what, -100.0 * c.paper_drop,
                        100.0 * (loaded - idle) / idle});
    }
    std::printf("\nPaper: caches keep full speed; DRAM loses ~8%% "
                "contiguous and ~25%%\nstrided under full load.\n");
    return 0;
}
