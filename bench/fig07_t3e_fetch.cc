/**
 * @file
 * Regenerates Figure 7: Cray T3E transfer bandwidth under the fetch
 * model (shmem_iget through the E-registers), p1 <- pull <- p0.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 7",
                  "Cray T3E fetch (shmem_iget) transfer bandwidth");
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    auto cfg = bench::remoteGrid(bench::fullRun(argc, argv), 16_MiB,
                                 1_MiB);
    core::Surface s = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Fetch,
                                true, 0, 1),
        cfg, obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"iget contiguous (MB/s)", 350, s.at(8_MiB, 1)},
        {"iget strided (flat)", 140, s.at(8_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
