/**
 * @file
 * Regenerates Figure 5: Cray T3D transfer bandwidth under the deposit
 * model (remote stores captured from the write-back queue).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 5",
                  "Cray T3D deposit (remote stores) transfer "
                  "bandwidth, p0,1 -> push -> p2,3");
    machine::Machine m(machine::SystemKind::CrayT3D, 4);
    auto cfg = bench::remoteGrid(bench::fullRun(argc, argv), 16_MiB,
                                 512_KiB);
    core::Surface s = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                false, 0, 2),
        cfg, obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"deposit contiguous (MB/s)", 120, s.at(8_MiB, 1)},
        {"deposit strided stores", 55, s.at(8_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
