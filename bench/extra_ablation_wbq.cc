/**
 * @file
 * Ablation: the Cray T3D without its coalescing write-back queue.
 *
 * The WBQ is the design feature behind two of the paper's findings:
 * strided local stores at 70 MB/s (Figure 10, "well pipelined writes
 * through a write back queue") and remote deposits at 120/55 MB/s
 * (Figure 5, "remote stores are directly captured from the write
 * back queues").  Removing it makes every store an individual
 * word-granularity DRAM / network operation.
 */

#include "bench_util.hh"
#include "kernels/remote_kernels.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Ablation",
                  "Cray T3D with and without the coalescing "
                  "write-back queue");

    machine::Machine with(machine::SystemKind::CrayT3D, 4);
    mem::HierarchyConfig cfg = machine::crayT3dNode("ablated");
    cfg.wbq.reset(); // stores go to memory word by word
    machine::Machine without(machine::SystemKind::CrayT3D, 4, cfg);

    auto copy_mbs = [](machine::Machine &m, std::uint64_t stride) {
        kernels::KernelParams p;
        p.wsBytes = 8_MiB;
        p.stride = stride;
        p.capBytes = 4_MiB;
        const std::uint64_t eff =
            kernels::effectiveWorkingSet(m.node(0), p);
        return kernels::copyOn(m, 0, p,
                               kernels::CopyVariant::StridedStores,
                               eff)
            .mbs;
    };
    auto deposit_mbs = [](machine::Machine &m, std::uint64_t stride) {
        kernels::RemoteParams p;
        p.src = 0;
        p.dst = 2;
        p.wsBytes = 4_MiB;
        p.stride = stride;
        p.strideOnSource = false;
        p.method = remote::TransferMethod::Deposit;
        p.dstBase = 1ull << 33;
        return kernels::remoteTransfer(m, p).mbs;
    };

    std::printf("%-34s %10s %10s %8s\n", "experiment", "with WBQ",
                "without", "ratio");
    struct Row
    {
        const char *what;
        double a;
        double b;
    };
    const Row rows[] = {
        {"local copy, contiguous stores", copy_mbs(with, 1),
         copy_mbs(without, 1)},
        {"local copy, strided stores @16", copy_mbs(with, 16),
         copy_mbs(without, 16)},
        {"remote deposit, contiguous", deposit_mbs(with, 1),
         deposit_mbs(without, 1)},
        {"remote deposit, strided @16", deposit_mbs(with, 16),
         deposit_mbs(without, 16)},
    };
    for (const Row &r : rows)
        std::printf("%-34s %10.1f %10.1f %8.2f\n", r.what, r.a, r.b,
                    r.a / r.b);
    std::printf("\nWithout the WBQ, contiguous stores lose their "
                "32-byte coalescing and\nremote deposits degrade to "
                "blocking word-granular stores (5x). Local\nstrided "
                "stores survive because the store buffer still "
                "pipelines word\nwrites — the queue's value is "
                "coalescing and network capture.\n");
    return 0;
}
