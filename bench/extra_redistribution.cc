/**
 * @file
 * HPF array redistribution bandwidth — the communication steps the
 * Fx compiler actually generates ("all array assignment statements
 * and array distributions, not just transposes", Section 2.1),
 * executed with each machine's native transfer method.
 */

#include "bench_util.hh"
#include "core/redistribution.hh"

int
main(int, char **)
{
    using namespace gasnub;
    using core::DistKind;
    bench::banner("Extra (Section 2.1)",
                  "HPF redistribution bandwidth, 4 processors, "
                  "1M-word array");
    const std::uint64_t n = 1 << 20;
    struct Case
    {
        const char *label;
        DistKind from;
        DistKind to;
    };
    const Case cases[] = {
        {"BLOCK  -> BLOCK ", DistKind::Block, DistKind::Block},
        {"BLOCK  -> CYCLIC", DistKind::Block, DistKind::Cyclic},
        {"CYCLIC -> BLOCK ", DistKind::Cyclic, DistKind::Block},
        {"CYCLIC -> CYCLIC", DistKind::Cyclic, DistKind::Cyclic},
    };

    std::printf("%-18s %12s %12s %12s   [MB/s]\n", "assignment",
                "DEC 8400", "Cray T3D", "Cray T3E");
    for (const Case &c : cases) {
        core::Distribution from;
        from.kind = c.from;
        from.elements = n;
        from.procs = 4;
        core::Distribution to = from;
        to.kind = c.to;
        const auto plan = core::planRedistribution(from, to);
        std::printf("%-18s", c.label);
        for (auto kind : {machine::SystemKind::Dec8400,
                          machine::SystemKind::CrayT3D,
                          machine::SystemKind::CrayT3E}) {
            machine::Machine m(kind, 4);
            std::printf(" %12.0f",
                        core::executeRedistribution(m, plan).mbs);
        }
        std::printf("   (%zu transfers, %llu remote words)\n",
                    plan.transfers.size(),
                    static_cast<unsigned long long>(
                        plan.remoteWords));
    }
    std::printf("\nMatching distributions copy locally at memory "
                "speed; BLOCK <-> CYCLIC\nassignments turn into "
                "stride-P transfers and inherit the strided\nremote "
                "plateaus of Figures 12-14.\n");
    return 0;
}
