/**
 * @file
 * The Section 8 scalability experiment: the compiled 2D-FFT on large
 * Cray T3D partitions stays near 20 MFlop/s per processor ("almost
 * linear scalability from 16 to 512 nodes", 8.75 GFlop/s at 512).
 * Transposes are simulated with a per-block row cap and extrapolated.
 */

#include "bench_util.hh"
#include "fft/fft2d_dist.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::banner("Extra (Section 8)",
                  "2D-FFT scalability on large Cray T3D partitions");
    const bool full = bench::fullRun(argc, argv);
    std::printf("%8s %8s %12s %14s %12s\n", "procs", "n", "overall",
                "MFlop/s/proc", "comm MB/s");
    double last_per_proc = 0;
    for (int procs : {16, 64, 128, 256, 512}) {
        if (!full && procs > 256)
            procs = 512; // always include the headline point
        machine::Machine m(machine::SystemKind::CrayT3D, procs);
        fft::DistributedFft2d app(m);
        fft::Fft2dConfig cfg;
        // Problem grows with the machine (constant memory per node).
        cfg.n = static_cast<std::uint64_t>(procs) * 8;
        cfg.rowCapWords = 4;
        const auto r = app.run(cfg);
        last_per_proc = r.overallMFlops / procs;
        std::printf("%8d %8llu %12.0f %14.1f %12.0f\n", procs,
                    static_cast<unsigned long long>(cfg.n),
                    r.overallMFlops, last_per_proc, r.commMBs);
    }
    bench::compare({
        {"MFlop/s per processor at 512 (paper ~17)", 17.1,
         last_per_proc},
    });
    return 0;
}
