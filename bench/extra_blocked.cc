/**
 * @file
 * The blocking study the paper proposes (Sections 6.1 and 9): loop
 * order and cache blocking for a large local transpose, plus the
 * power-of-two leading-dimension aliasing that real transposes pad
 * away.
 */

#include "bench_util.hh"
#include "kernels/blocked.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Sections 6.1, 9)",
                  "transpose loop order and cache blocking "
                  "(4096 x 4096 words, 128 MB)");
    std::printf("%-12s %12s %12s %12s %12s\n", "machine",
                "column", "row", "tiled(pow2)", "tiled(pad)");
    for (auto kind :
         {machine::SystemKind::Dec8400, machine::SystemKind::CrayT3D,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        kernels::BlockedParams p;
        p.n = 4096;
        p.capRows = 128;
        auto run = [&](kernels::Traversal t, std::uint64_t ld) {
            p.traversal = t;
            p.leadingDim = ld;
            return kernels::blockedTranspose(m, 0, p).mbs;
        };
        const double column =
            run(kernels::Traversal::ColumnMajor, 0);
        const double row = run(kernels::Traversal::RowMajor, 0);
        p.tile = 64;
        const double pow2 = run(kernels::Traversal::Tiled, 0);
        const double padded =
            run(kernels::Traversal::Tiled, p.n + 8);
        std::printf("%-12s %12.0f %12.0f %12.0f %12.0f\n",
                    machine::systemName(kind).c_str(), column, row,
                    pow2, padded);
    }
    std::printf("\nTwo classic effects on top of the paper's "
                "hypothesis: blocking helps\nmost where there is no "
                "board cache, and a power-of-two leading\ndimension "
                "aliases the destination columns onto one cache set "
                "until\nthe rows are padded.\n");
    return 0;
}
