/**
 * @file
 * Regenerates Figure 10: Cray T3D local memory copy bandwidth for
 * large transfers, strided loads vs. strided stores.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 10",
                  "Cray T3D local copy, 65 MB working set: strided "
                  "loads vs strided stores");
    machine::Machine m(machine::SystemKind::CrayT3D, 4);
    auto cfg = bench::copySliceGrid(4_MiB);
    core::Surface sl =
        bench::sweep(
            m,
            core::SweepSpec::localCopy(
                kernels::CopyVariant::StridedLoads, 0),
            cfg, obs.jobs);
    core::Surface ss =
        bench::sweep(
            m,
            core::SweepSpec::localCopy(
                kernels::CopyVariant::StridedStores, 0),
            cfg, obs.jobs);
    sl.print(std::cout);
    ss.print(std::cout);
    bench::compare({
        {"contiguous copy (MB/s)", 100, sl.at(65 * 1_MiB, 1)},
        {"strided loads @16 (load-limited)", 43,
         sl.at(65 * 1_MiB, 16)},
        {"strided stores @16 (WBQ)", 70, ss.at(65 * 1_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
