/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench binary regenerates one figure of the paper: it prints
 * the same series the figure plots (bandwidth or MFlop/s tables) and,
 * where the paper states numbers in the text, a paper-vs-model
 * comparison block.  Absolute numbers come from calibrated machine
 * models; the claim being checked is the *shape* (plateaus, ratios,
 * crossovers) — see EXPERIMENTS.md.
 *
 * Pass "full" as the first argument for the paper's full working-set
 * axis (up to 128 MB); the default grids are trimmed to keep each
 * bench around a minute.
 */

#ifndef GASNUB_BENCH_BENCH_UTIL_HH
#define GASNUB_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/characterizer.hh"
#include "machine/machine.hh"
#include "sim/units.hh"

namespace gasnub::bench {

/** True if the bench was invoked with the "full" argument. */
inline bool
fullRun(int argc, char **argv)
{
    return argc > 1 && std::strcmp(argv[1], "full") == 0;
}

/** Header line for a figure bench. */
inline void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s — %s\n", figure.c_str(), caption.c_str());
    std::printf("==================================================="
                "=========\n");
}

/** Grid for the local load/store surfaces (Figures 1, 3, 6). */
inline core::CharacterizeConfig
surfaceGrid(bool full, std::uint64_t max_full,
            std::uint64_t cap_bytes)
{
    core::CharacterizeConfig cfg;
    cfg.maxWorkingSet = full ? max_full : 16_MiB;
    cfg.capBytes = cap_bytes;
    return cfg;
}

/**
 * Grid for the remote transfer surfaces (Figures 2, 4, 5, 7, 8):
 * remote sweeps cost a produce + transfer per point, so the default
 * working-set axis is 4x-spaced; "full" uses the paper's 2x axis.
 */
inline core::CharacterizeConfig
remoteGrid(bool full, std::uint64_t max_full, std::uint64_t cap_bytes)
{
    core::CharacterizeConfig cfg;
    cfg.capBytes = cap_bytes;
    if (full) {
        cfg.maxWorkingSet = max_full;
        return cfg;
    }
    for (std::uint64_t ws = 512; ws <= max_full / 2; ws *= 4)
        cfg.workingSets.push_back(ws);
    if (cfg.workingSets.back() != max_full / 2)
        cfg.workingSets.push_back(max_full / 2);
    return cfg;
}

/** One-row grid for the 65 MB copy-transfer slices (Figures 9-14). */
inline core::CharacterizeConfig
copySliceGrid(std::uint64_t cap_bytes)
{
    core::CharacterizeConfig cfg;
    cfg.workingSets = {65 * 1_MiB};
    cfg.capBytes = cap_bytes;
    return cfg;
}

/** A paper reference point for the comparison block. */
struct PaperRef
{
    const char *what;
    double paper;
    double measured;
};

/** Print the paper-vs-model comparison block. */
inline void
compare(const std::vector<PaperRef> &refs)
{
    std::printf("\n%-44s %10s %10s %8s\n", "paper reference point",
                "paper", "model", "ratio");
    for (const PaperRef &r : refs) {
        std::printf("%-44s %10.0f %10.1f %8.2f\n", r.what, r.paper,
                    r.measured, r.measured / r.paper);
    }
    std::printf("\n");
}

} // namespace gasnub::bench

#endif // GASNUB_BENCH_BENCH_UTIL_HH
