/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench binary regenerates one figure of the paper: it prints
 * the same series the figure plots (bandwidth or MFlop/s tables) and,
 * where the paper states numbers in the text, a paper-vs-model
 * comparison block.  Absolute numbers come from calibrated machine
 * models; the claim being checked is the *shape* (plateaus, ratios,
 * crossovers) — see EXPERIMENTS.md.
 *
 * Pass "full" as the first argument for the paper's full working-set
 * axis (up to 128 MB); the default grids are trimmed to keep each
 * bench around a minute.
 */

#ifndef GASNUB_BENCH_BENCH_UTIL_HH
#define GASNUB_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/characterizer.hh"
#include "core/sweep_runner.hh"
#include "gas/fft2d.hh"
#include "gas/runtime.hh"
#include "machine/machine.hh"
#include "serve/planner_index.hh"
#include "sim/pool.hh"
#include "sim/profiler.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

namespace gasnub::bench {

/** True if the bench was invoked with the "full" argument. */
inline bool
fullRun(int argc, char **argv)
{
    return argc > 1 && std::strcmp(argv[1], "full") == 0;
}

/**
 * Observability options shared by the figure benches:
 *
 *   --trace-out=FILE         write an event trace (Chrome trace JSON,
 *                            or CSV when FILE ends in .csv)
 *   --trace-categories=LIST  comma-separated subset of
 *                            mem,noc,remote,kernel,sim (default all)
 *   --stats-json=FILE        dump the machine's stats tree as JSON
 *   --jobs=N                 worker threads for the sweeps (default:
 *                            GASNUB_JOBS, then hardware concurrency;
 *                            1 = serial; output is byte-identical
 *                            either way)
 *   --profile                profile the simulator itself: ranked
 *                            host wall-clock zone report on stderr
 *                            at finish() (GASNUB_PROFILE=1 works too)
 *
 * Construct at the top of main (enables tracing before the machine is
 * built) and call finish() with the machine's stats group at the end.
 */
struct Observability
{
    std::string traceOut;
    std::string statsJson;
    int jobs = 1;

    Observability(int argc, char **argv)
    {
        std::uint32_t mask = trace::allCategories;
        int jobs_arg = 0;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a.rfind("--trace-out=", 0) == 0)
                traceOut = a.substr(12);
            else if (a.rfind("--trace-categories=", 0) == 0)
                mask = trace::parseCategories(a.substr(19));
            else if (a.rfind("--stats-json=", 0) == 0)
                statsJson = a.substr(13);
            else if (a.rfind("--jobs=", 0) == 0)
                jobs_arg = std::atoi(a.c_str() + 7);
            else if (a == "--profile")
                prof::Profiler::enable(true);
        }
        prof::Profiler::enableFromEnv();
        jobs = sim::defaultJobs(jobs_arg);
        if (!traceOut.empty())
            trace::Tracer::instance().setMask(mask);
    }

    /** Write the requested outputs; call at the end of main. */
    void
    finish(stats::Group &root) const
    {
        trace::Tracer &tracer = trace::Tracer::instance();
        if (!traceOut.empty()) {
            std::ofstream os(traceOut);
            const bool csv =
                traceOut.size() > 4 &&
                traceOut.compare(traceOut.size() - 4, 4, ".csv") == 0;
            if (csv)
                tracer.exportCsv(os);
            else
                tracer.exportChromeJson(os);
            std::fprintf(stderr, "trace: %zu events to %s",
                         tracer.size(), traceOut.c_str());
            if (tracer.dropped())
                std::fprintf(stderr, " (%llu dropped)",
                             static_cast<unsigned long long>(
                                 tracer.dropped()));
            std::fprintf(stderr, "\n");
        }
        if (!statsJson.empty()) {
            std::ofstream os(statsJson);
            root.dumpJson(os);
            os << "\n";
            std::fprintf(stderr, "stats: %s\n", statsJson.c_str());
        }
        if (prof::enabled())
            prof::Profiler::instance().report(std::cerr);
    }
};

/**
 * Run one characterization sweep on @p m, distributing grid points
 * over @p jobs workers when > 1.  Per-worker machine replicas are
 * built from m.systemConfig(); the surface, trace events, and stats
 * merge back deterministically, so every output is byte-identical to
 * a serial run (see docs/parallel_sweeps.md).
 */
inline core::Surface
sweep(machine::Machine &m, const core::SweepSpec &spec,
      const core::CharacterizeConfig &cfg, int jobs)
{
    if (jobs <= 1) {
        core::Characterizer c(m);
        return c.run(spec, cfg);
    }
    core::SweepRunner runner(m.systemConfig(), jobs);
    core::Surface s = runner.run(spec, cfg);
    runner.mergeStatsInto(m.statsGroup());
    return s;
}

/** Header line for a figure bench. */
inline void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s — %s\n", figure.c_str(), caption.c_str());
    std::printf("==================================================="
                "=========\n");
}

/** Grid for the local load/store surfaces (Figures 1, 3, 6). */
inline core::CharacterizeConfig
surfaceGrid(bool full, std::uint64_t max_full,
            std::uint64_t cap_bytes)
{
    core::CharacterizeConfig cfg;
    cfg.maxWorkingSet = full ? max_full : 16_MiB;
    cfg.capBytes = cap_bytes;
    return cfg;
}

/**
 * Grid for the remote transfer surfaces (Figures 2, 4, 5, 7, 8):
 * remote sweeps cost a produce + transfer per point, so the default
 * working-set axis is 4x-spaced; "full" uses the paper's 2x axis.
 */
inline core::CharacterizeConfig
remoteGrid(bool full, std::uint64_t max_full, std::uint64_t cap_bytes)
{
    core::CharacterizeConfig cfg;
    cfg.capBytes = cap_bytes;
    if (full) {
        cfg.maxWorkingSet = max_full;
        return cfg;
    }
    for (std::uint64_t ws = 512; ws <= max_full / 2; ws *= 4)
        cfg.workingSets.push_back(ws);
    if (cfg.workingSets.back() != max_full / 2)
        cfg.workingSets.push_back(max_full / 2);
    return cfg;
}

/** One-row grid for the 65 MB copy-transfer slices (Figures 9-14). */
inline core::CharacterizeConfig
copySliceGrid(std::uint64_t cap_bytes)
{
    core::CharacterizeConfig cfg;
    cfg.workingSets = {65 * 1_MiB};
    cfg.capBytes = cap_bytes;
    return cfg;
}

/**
 * One pinned scenario of the benchmark protocol (tools/bench).
 *
 * Each scenario fixes a machine, a workload, and a grid; tools/bench
 * times it and records simulation throughput (points/sec) in
 * BENCH_<pr>.json, tracked across PRs (see docs/perf_tracking.md).
 * Grids are pinned literals — never "full"/host-derived defaults — so
 * the work per run is identical on every host and every PR.
 */
struct PerfScenario
{
    std::string name; ///< stable key, e.g. "t3d.local.loads"
    machine::SystemKind kind = machine::SystemKind::CrayT3D;
    int procs = 4;
    core::SweepSpec spec; ///< ignored when fft
    core::CharacterizeConfig cfg;
    bool fft = false;      ///< run the gas 2D-FFT app, not a sweep
    std::uint64_t fftN = 64;
    bool serve = false; ///< run plan queries against a PlannerIndex
    std::uint64_t serveQueries = 0;
    std::size_t serveCacheCapacity = 1 << 16; ///< 0 = no cache
    bool serveHotMix = false; ///< hot 64-key mix vs uniform keys
    /** Measure per-query p99 latency instead of bulk throughput; the
     *  recorded rate becomes 1e9 / p99_ns (inverse tail latency), so
     *  the existing --compare gate flags p99 growth as a regression. */
    bool serveSlo = false;
};

/** Work counters from one scenario execution. */
struct PerfRunCounts
{
    std::uint64_t points = 0;   ///< grid points (1 for the FFT)
    std::uint64_t accesses = 0; ///< simulated word accesses
    std::uint64_t sloP99Ns = 0; ///< p99 query latency (serveSlo only)
};

/** The fixed scenario registry of the benchmark protocol. */
inline std::vector<PerfScenario>
perfScenarios()
{
    using machine::SystemKind;
    std::vector<PerfScenario> out;

    // Local-load sweeps on all three machines: the dominant cost of
    // figure regeneration, and the purest measure of the per-access
    // simulation path (hierarchy read + cache model).
    core::CharacterizeConfig local;
    local.workingSets = {512, 2_KiB, 8_KiB, 32_KiB, 128_KiB};
    local.strides = {1, 2, 4, 8, 16, 32, 64, 128};
    local.capBytes = 128_KiB;
    for (SystemKind kind : {SystemKind::Dec8400, SystemKind::CrayT3D,
                            SystemKind::CrayT3E}) {
        PerfScenario s;
        s.name = std::string(kind == SystemKind::Dec8400 ? "dec8400"
                             : kind == SystemKind::CrayT3D ? "t3d"
                                                           : "t3e") +
                 ".local.loads";
        s.kind = kind;
        s.spec = core::SweepSpec::localLoads(0);
        s.cfg = local;
        out.push_back(std::move(s));
    }

    // One remote sweep per machine, using its native method: remote
    // points exercise the NoC, engines, and coherence paths.
    core::CharacterizeConfig remote;
    remote.workingSets = {512, 2_KiB, 8_KiB, 32_KiB};
    remote.strides = {1, 4, 16, 64};
    remote.capBytes = 128_KiB;
    {
        PerfScenario s;
        s.name = "dec8400.remote.pull";
        s.kind = SystemKind::Dec8400;
        s.spec = core::SweepSpec::remote(
            remote::TransferMethod::CoherentPull, true, 1, 0);
        s.cfg = remote;
        out.push_back(std::move(s));
    }
    {
        PerfScenario s;
        s.name = "t3d.remote.fetch";
        s.kind = SystemKind::CrayT3D;
        s.spec = core::SweepSpec::remote(remote::TransferMethod::Fetch,
                                         true, 0, 2);
        s.cfg = remote;
        out.push_back(std::move(s));
    }
    {
        PerfScenario s;
        s.name = "t3e.remote.deposit";
        s.kind = SystemKind::CrayT3E;
        s.spec = core::SweepSpec::remote(
            remote::TransferMethod::Deposit, false, 1, 0);
        s.cfg = remote;
        out.push_back(std::move(s));
    }

    // The gas-runtime application path: allocation, planner, barrier,
    // and transfer-op overheads that no sweep touches.
    {
        PerfScenario s;
        s.name = "t3e.gas.fft2d";
        s.kind = SystemKind::CrayT3E;
        s.fft = true;
        s.fftN = 64;
        out.push_back(std::move(s));
    }

    // The serving path (serve::PlannerIndex): plan-query throughput
    // over a synthetic three-machine index.  hot = repetitive stream
    // (cache-hit path), uniform = diverse stream (cost-model compute
    // path), nocache = the same diverse stream with the decision
    // cache disabled (isolates the cache's benefit as a tracked
    // number).
    {
        PerfScenario s;
        s.name = "serve.qps.hot";
        s.serve = true;
        s.serveQueries = 2'000'000;
        s.serveHotMix = true;
        out.push_back(std::move(s));
    }
    {
        PerfScenario s;
        s.name = "serve.qps.uniform";
        s.serve = true;
        s.serveQueries = 1'000'000;
        out.push_back(std::move(s));
    }
    {
        PerfScenario s;
        s.name = "serve.qps.nocache";
        s.serve = true;
        s.serveQueries = 1'000'000;
        s.serveCacheCapacity = 0;
        out.push_back(std::move(s));
    }
    // Tail latency, not throughput: the hot stream again, but the
    // tracked number is 1e9/p99_ns so the regression gate catches a
    // slow outlier path (lock contention, an allocation sneaking into
    // plan()) that averages would hide.
    {
        PerfScenario s;
        s.name = "serve.slo.p99";
        s.serve = true;
        s.serveSlo = true;
        s.serveQueries = 2'000'000;
        s.serveHotMix = true;
        out.push_back(std::move(s));
    }
    return out;
}

/**
 * A deterministic three-machine pack set for the serve scenarios:
 * synthetic surfaces (smooth analytic bandwidth shapes over an
 * 8 x 6 grid) so the scenario needs no measured files and every host
 * runs the identical index.
 */
inline std::vector<serve::MachinePack>
servePerfPacks()
{
    std::vector<serve::MachinePack> packs;
    const std::vector<std::uint64_t> ws = {1_KiB,   4_KiB,  16_KiB,
                                           64_KiB, 256_KiB, 1_MiB,
                                           4_MiB,  16_MiB};
    const std::vector<std::uint64_t> strides = {1, 2, 4, 8, 16, 64};
    int seed = 1;
    for (const char *name : {"t3e", "t3d", "dec8400"}) {
        serve::MachinePack p;
        p.machine = name;
        for (const char *label : {"pull", "fetch-sload",
                                  "deposit-sstore"}) {
            core::Surface s(std::string(name) + " " + label, ws,
                            strides);
            double v = 40.0 * seed;
            for (std::uint64_t w : ws) {
                for (std::uint64_t st : strides) {
                    v = v * 1.0001 + 1.0 / static_cast<double>(st);
                    s.set(w, st,
                          v / (1.0 + static_cast<double>(w) / 8_MiB));
                }
            }
            const auto kind =
                label[0] == 'p'
                    ? remote::TransferMethod::CoherentPull
                    : label[0] == 'f' ? remote::TransferMethod::Fetch
                                      : remote::TransferMethod::Deposit;
            p.options.emplace_back(label, kind, label[0] != 'd',
                                   std::move(s));
            ++seed;
        }
        packs.push_back(std::move(p));
    }
    return packs;
}

/**
 * Issue @p s.serveQueries single-threaded plan queries against a
 * fresh index; the same seeded stream as tools/loadgen's mixes.  The
 * XOR fold keeps the answers observable so the loop cannot be
 * optimized away.
 */
inline PerfRunCounts
runServeScenario(const PerfScenario &s)
{
    serve::IndexConfig config;
    config.cacheCapacity = s.serveCacheCapacity;
    const serve::PlannerIndex index(servePerfPacks(), config);
    sim::Rng rng(42);
    const std::size_t machines = index.numMachines();

    core::TransferQuery hot[64];
    std::size_t hot_machine[64];
    for (int i = 0; i < 64; ++i) {
        hot_machine[i] = rng.below(machines);
        hot[i].wsBytes = (std::uint64_t(1024) << rng.below(15)) +
                         8 * rng.below(4096);
        hot[i].bytes = hot[i].wsBytes;
        hot[i].stride = std::uint64_t(1) << rng.below(8);
    }

    std::uint64_t sink = 0;
    stats::Histogram latency(nullptr, "latency_ns",
                             "per-query plan latency");
    for (std::uint64_t i = 0; i < s.serveQueries; ++i) {
        std::size_t machine;
        core::TransferQuery q;
        if (s.serveHotMix && rng.below(20) < 19) {
            const std::uint64_t k = rng.below(64);
            machine = hot_machine[k];
            q = hot[k];
        } else {
            machine = rng.below(machines);
            q.wsBytes = (std::uint64_t(1024) << rng.below(15)) +
                        8 * rng.below(4096);
            q.bytes = q.wsBytes;
            q.stride = std::uint64_t(1) << rng.below(8);
        }
        if (s.serveSlo) {
            const auto t0 = std::chrono::steady_clock::now();
            const serve::PlanAnswer a = index.plan(machine, q);
            const auto t1 = std::chrono::steady_clock::now();
            sink ^= a.optionIndex;
            latency.sample(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count()));
        } else {
            const serve::PlanAnswer a = index.plan(machine, q);
            sink ^= a.optionIndex;
        }
    }
    // Publish the fold so the optimizer must keep the plan calls.
    static volatile std::uint64_t published;
    published = sink;

    PerfRunCounts counts;
    counts.points = s.serveQueries;
    counts.accesses = s.serveQueries;
    if (s.serveSlo)
        counts.sloP99Ns = static_cast<std::uint64_t>(
            latency.percentile(0.99));
    return counts;
}

/** Run @p s once (serial or over @p jobs workers for sweeps). */
inline PerfRunCounts
runPerfScenario(const PerfScenario &s, int jobs = 1)
{
    if (s.serve)
        return runServeScenario(s);
    machine::SystemConfig sys;
    sys.kind = s.kind;
    sys.numNodes = s.procs;
    PerfRunCounts counts;
    if (s.fft) {
        machine::Machine m(sys);
        gas::Runtime rt(m, gas::RuntimeConfig{});
        gas::Fft2d app(rt);
        gas::Fft2dConfig cfg;
        cfg.n = s.fftN;
        app.run(cfg);
        counts.points = 1;
        counts.accesses = rt.deliveredBytes() / 8;
        return counts;
    }
    if (jobs <= 1) {
        machine::Machine m(sys);
        core::Characterizer chr(m);
        chr.run(s.spec, s.cfg);
        counts.points = chr.points();
        counts.accesses = chr.accesses();
    } else {
        core::SweepRunner runner(sys, jobs);
        runner.run(s.spec, s.cfg);
        counts.points = runner.points();
        counts.accesses = runner.accesses();
    }
    return counts;
}

/** A paper reference point for the comparison block. */
struct PaperRef
{
    const char *what;
    double paper;
    double measured;
};

/** Print the paper-vs-model comparison block. */
inline void
compare(const std::vector<PaperRef> &refs)
{
    std::printf("\n%-44s %10s %10s %8s\n", "paper reference point",
                "paper", "model", "ratio");
    for (const PaperRef &r : refs) {
        std::printf("%-44s %10.0f %10.1f %8.2f\n", r.what, r.paper,
                    r.measured, r.measured / r.paper);
    }
    std::printf("\n");
}

} // namespace gasnub::bench

#endif // GASNUB_BENCH_BENCH_UTIL_HH
