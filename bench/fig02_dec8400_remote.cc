/**
 * @file
 * Regenerates Figure 2: DEC 8400 remote (coherent pull) bandwidth for
 * different strides and working sets; transfers P1 -> P0.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 2",
                  "DEC 8400 remote pull bandwidth (P0 <- pull <- P1)");
    machine::Machine m(machine::SystemKind::Dec8400, 4);
    auto cfg = bench::remoteGrid(bench::fullRun(argc, argv), 32_MiB,
                                 12_MiB);
    core::Surface s = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::CoherentPull,
                                true, 1, 0),
        cfg, obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"remote contiguous max (MB/s)", 140, s.at(16_MiB, 1)},
        {"remote strided from DRAM", 22, s.at(16_MiB, 32)},
        {"cached working set, strided", 75, s.at(2_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
