/**
 * @file
 * Synchronization costs of the direct-deposit model (Section 2.2):
 * point-to-point signal latency and its effect on pipelined transfer
 * bandwidth ("data messages are sent only when the receiver has
 * signaled its willingness to accept them").
 */

#include "bench_util.hh"
#include "machine/sync.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Section 2.2)",
                  "synchronization: signal latency and sync-limited "
                  "bandwidth");
    std::printf("%-12s %14s %14s\n", "machine", "signal (us)",
                "barrier (us)");
    struct Row
    {
        machine::SystemKind kind;
        double signalTicks;
        double raw_mbs;
    };
    std::vector<Row> rows;
    for (auto kind :
         {machine::SystemKind::Dec8400, machine::SystemKind::CrayT3D,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        const NodeId dst =
            kind == machine::SystemKind::CrayT3D ? 2 : 1;
        const auto s = machine::signalLatency(m, 0, dst, 1ull << 33);
        std::printf("%-12s %14.2f %14.2f\n",
                    machine::systemName(kind).c_str(),
                    static_cast<double>(s.latency) / 1e6,
                    static_cast<double>(m.barrierCost()) / 1e6);
        const double raw =
            kind == machine::SystemKind::Dec8400
                ? 140
                : (kind == machine::SystemKind::CrayT3D ? 120 : 350);
        rows.push_back({kind, static_cast<double>(s.latency), raw});
    }

    std::printf("\nEffective contiguous bandwidth when every block "
                "is individually\nsynchronized (MB/s):\n");
    std::printf("%-12s", "block");
    for (const Row &r : rows)
        std::printf("%12s",
                    machine::systemName(r.kind).c_str());
    std::printf("\n");
    for (std::uint64_t block : {256ull, 1024ull, 4096ull, 16384ull,
                                65536ull, 262144ull}) {
        std::printf("%-12s", formatSize(block).c_str());
        for (const Row &r : rows) {
            std::printf("%12.0f",
                        machine::syncLimitedBandwidth(
                            r.raw_mbs,
                            static_cast<Tick>(r.signalTicks), block));
        }
        std::printf("\n");
    }
    std::printf("\nThe direct-deposit model's separation of "
                "synchronization from data\ntransfer pays off: one "
                "signal per large block costs almost nothing,\nwhile "
                "per-cache-line synchronization would forfeit most "
                "of the\nbandwidth.\n");
    return 0;
}
