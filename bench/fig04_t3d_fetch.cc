/**
 * @file
 * Regenerates Figure 4: Cray T3D transfer bandwidth under the fetch
 * model (remote loads / shmem_iget), p2,3 <- pull <- p0,1.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 4",
                  "Cray T3D fetch (remote loads) transfer bandwidth");
    machine::Machine m(machine::SystemKind::CrayT3D, 4);
    auto cfg = bench::remoteGrid(bench::fullRun(argc, argv), 16_MiB,
                                 512_KiB);
    core::Surface s = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Fetch,
                                true, 0, 2),
        cfg, obs.jobs);
    s.print(std::cout);
    std::printf("The paper: naive remote loads run an order of "
                "magnitude below the\nnetwork bandwidth; the "
                "prefetch FIFO helps but fetch stays inferior\nto "
                "deposit everywhere (compare Figure 5).\n");
    bench::compare({
        {"fetch contiguous (MB/s)", 65, s.at(8_MiB, 1)},
        {"fetch stride 2", 20, s.at(8_MiB, 2)},
        {"fetch large strides", 43, s.at(8_MiB, 32)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
