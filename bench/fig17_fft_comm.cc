/**
 * @file
 * Regenerates Figure 17: communication performance in the transposes
 * of the 2D-FFT benchmark on 4 processors.
 */

#include "fft_common.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 17",
                  "2D-FFT transpose communication performance, 4 "
                  "processors");
    auto sweep = bench::runFftSweep(obs.jobs);
    bench::printFftTable(sweep, "MByte/s total",
                         [](const fft::Fft2dResult &r) {
                             return r.commMBs;
                         });
    const auto &t3d = sweep[0].results[3];
    const auto &dec = sweep[1].results[3];
    const auto &t3e = sweep[2].results[3];
    std::printf("\nPaper: the 8400 communication system 'runs at "
                "approximately the same\nperformance level as the "
                "... Cray T3D' (model @256: %.0f vs %.0f\nMB/s); "
                "the T3E leads but below its potential due to the "
                "shmem_iput\nmismatch (model: %.0f MB/s).\n",
                dec.commMBs, t3d.commMBs, t3e.commMBs);
    return 0;
}
