/**
 * @file
 * Regenerates Figure 11: Cray T3E local memory copy bandwidth for
 * large transfers, strided loads vs. strided stores.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 11",
                  "Cray T3E local copy, 65 MB working set: strided "
                  "loads vs strided stores");
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    auto cfg = bench::copySliceGrid(4_MiB);
    core::Surface sl =
        bench::sweep(
            m,
            core::SweepSpec::localCopy(
                kernels::CopyVariant::StridedLoads, 0),
            cfg, obs.jobs);
    core::Surface ss =
        bench::sweep(
            m,
            core::SweepSpec::localCopy(
                kernels::CopyVariant::StridedStores, 0),
            cfg, obs.jobs);
    sl.print(std::cout);
    ss.print(std::cout);
    std::printf("\"The write-back caches prohibit efficient strided "
                "stores\" — the\nstrided picture resembles the DEC "
                "8400, not the T3D.\n");
    bench::compare({
        {"contiguous copy (MB/s)", 200, sl.at(65 * 1_MiB, 1)},
        {"strided loads @16", 36, sl.at(65 * 1_MiB, 16)},
        {"strided stores @16", 25, ss.at(65 * 1_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
