/**
 * @file
 * Regenerates Figure 3: load bandwidth of the Cray T3D for different
 * access patterns and working sets; one processor active.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 3",
                  "Cray T3D local load bandwidth (stride x working "
                  "set), one processor");
    machine::Machine m(machine::SystemKind::CrayT3D, 4);
    core::Surface s = bench::sweep(
        m, core::SweepSpec::localLoads(0),
        bench::surfaceGrid(bench::fullRun(argc, argv), 16_MiB,
                              4_MiB),
        obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"L1 plateau (MB/s)", 600, s.at(4_KiB, 1)},
        {"DRAM contiguous (read-ahead)", 195, s.at(16_MiB, 1)},
        {"DRAM strided", 43, s.at(16_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
