/**
 * @file
 * Shared driver for the 2D-FFT figure benches (Figures 15-17).
 */

#ifndef GASNUB_BENCH_FFT_COMMON_HH
#define GASNUB_BENCH_FFT_COMMON_HH

#include <vector>

#include "bench_util.hh"
#include "fft/fft2d_dist.hh"

namespace gasnub::bench {

struct FftSeries
{
    machine::SystemKind kind;
    std::vector<fft::Fft2dResult> results;
};

/** Problem sizes of Figures 15-17. */
inline std::vector<std::uint64_t>
fftSizes()
{
    return {32, 64, 128, 256, 512, 1024};
}

/** Run the 4-processor 2D-FFT sweep on all three machines. */
inline std::vector<FftSeries>
runFftSweep()
{
    std::vector<FftSeries> out;
    for (auto kind :
         {machine::SystemKind::CrayT3D, machine::SystemKind::Dec8400,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        fft::DistributedFft2d app(m);
        FftSeries series;
        series.kind = kind;
        for (std::uint64_t n : fftSizes()) {
            fft::Fft2dConfig cfg;
            cfg.n = n;
            series.results.push_back(app.run(cfg));
        }
        out.push_back(std::move(series));
    }
    return out;
}

/** Print one metric of the sweep as a paper-style table. */
template <typename Metric>
void
printFftTable(const std::vector<FftSeries> &sweep, const char *unit,
              Metric &&metric)
{
    std::printf("%-10s", "n x n");
    for (std::uint64_t n : fftSizes())
        std::printf("%9llu", static_cast<unsigned long long>(n));
    std::printf("   [%s]\n", unit);
    for (const FftSeries &s : sweep) {
        std::printf("%-10s", machine::systemName(s.kind).c_str());
        for (const auto &r : s.results)
            std::printf("%9.0f", metric(r));
        std::printf("\n");
    }
}

} // namespace gasnub::bench

#endif // GASNUB_BENCH_FFT_COMMON_HH
