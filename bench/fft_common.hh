/**
 * @file
 * Shared driver for the 2D-FFT figure benches (Figures 15-17).
 */

#ifndef GASNUB_BENCH_FFT_COMMON_HH
#define GASNUB_BENCH_FFT_COMMON_HH

#include <vector>

#include "bench_util.hh"
#include "fft/fft2d_dist.hh"

namespace gasnub::bench {

struct FftSeries
{
    machine::SystemKind kind;
    std::vector<fft::Fft2dResult> results;
};

/** Problem sizes of Figures 15-17. */
inline std::vector<std::uint64_t>
fftSizes()
{
    return {32, 64, 128, 256, 512, 1024};
}

/**
 * Run the 4-processor 2D-FFT sweep on all three machines; with
 * @p jobs > 1 the machine rows run concurrently on private replicas
 * (results are identical to a serial run — every row computes on its
 * own machine in size order either way).
 */
inline std::vector<FftSeries>
runFftSweep(int jobs = 1)
{
    const machine::SystemKind kinds[] = {machine::SystemKind::CrayT3D,
                                         machine::SystemKind::Dec8400,
                                         machine::SystemKind::CrayT3E};
    std::vector<FftSeries> out(3);
    sim::ThreadPool pool(jobs);
    std::vector<trace::Tracer> tracers(pool.workers());
    pool.parallelFor(3, [&](int w, std::size_t j) {
        // Worker threads build machines, which register trace tracks:
        // route them to a private tracer.
        trace::ScopedThreadTracer scoped(tracers[w], 0);
        machine::Machine m(kinds[j], 4);
        fft::DistributedFft2d app(m);
        out[j].kind = kinds[j];
        for (std::uint64_t n : fftSizes()) {
            fft::Fft2dConfig cfg;
            cfg.n = n;
            out[j].results.push_back(app.run(cfg));
        }
    });
    return out;
}

/** Print one metric of the sweep as a paper-style table. */
template <typename Metric>
void
printFftTable(const std::vector<FftSeries> &sweep, const char *unit,
              Metric &&metric)
{
    std::printf("%-10s", "n x n");
    for (std::uint64_t n : fftSizes())
        std::printf("%9llu", static_cast<unsigned long long>(n));
    std::printf("   [%s]\n", unit);
    for (const FftSeries &s : sweep) {
        std::printf("%-10s", machine::systemName(s.kind).c_str());
        for (const auto &r : s.results)
            std::printf("%9.0f", metric(r));
        std::printf("\n");
    }
}

} // namespace gasnub::bench

#endif // GASNUB_BENCH_FFT_COMMON_HH
