/**
 * @file
 * End-to-end validation of the Fx back-end transfer-method choices
 * (paper Section 9): the 2D-FFT with the transpose compiled to
 * deposit vs. fetch on each Cray machine.  "On the T3D, pulling data
 * proves to be consistently inferior to pushing data.  On the T3E,
 * pulling data seems to work equally well or better."
 */

#include "bench_util.hh"
#include "fft/fft2d_dist.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Section 9)",
                  "2D-FFT (256x256) with deposit vs fetch "
                  "transposes");
    std::printf("%-12s %14s %14s %12s\n", "machine",
                "deposit MF/s", "fetch MF/s", "Fx choice");
    for (auto kind :
         {machine::SystemKind::CrayT3D, machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        fft::DistributedFft2d app(m);
        fft::Fft2dConfig cfg;
        cfg.n = 256;
        cfg.methodOverride = remote::TransferMethod::Deposit;
        const double dep = app.run(cfg).overallMFlops;
        cfg.methodOverride = remote::TransferMethod::Fetch;
        const double fet = app.run(cfg).overallMFlops;
        std::printf("%-12s %14.0f %14.0f %12s\n",
                    machine::systemName(kind).c_str(), dep, fet,
                    kind == machine::SystemKind::CrayT3D
                        ? "deposit"
                        : "fetch");
    }
    std::printf("\nThe compiled choices win end to end: the T3D's "
                "WBQ-captured deposits\nkeep complex pairs together, "
                "while engine-driven deposits on the T3E\nscatter at "
                "even strides and lose to fetch.\n");
    return 0;
}
