/**
 * @file
 * Regenerates Figure 13: Cray T3D remote copy transfer p0 -> p2 at a
 * 65 MB working set: strided loads vs strided remote stores.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 13",
                  "Cray T3D remote copy transfer p0 -> p2, 65 MB");
    machine::Machine m(machine::SystemKind::CrayT3D, 4);
    auto cfg = bench::copySliceGrid(4_MiB);
    core::Surface sl = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                true, 0, 2),
        cfg, obs.jobs);
    core::Surface ss = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                false, 0, 2),
        cfg, obs.jobs);
    sl.print(std::cout);
    ss.print(std::cout);
    bench::compare({
        {"contiguous (MB/s)", 120, ss.at(65 * 1_MiB, 1)},
        {"strided loads @16 (load-limited)", 43,
         sl.at(65 * 1_MiB, 16)},
        {"strided remote stores @16", 55, ss.at(65 * 1_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
