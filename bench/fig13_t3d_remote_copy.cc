/**
 * @file
 * Regenerates Figure 13: Cray T3D remote copy transfer p0 -> p2 at a
 * 65 MB working set: strided loads vs strided remote stores.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 13",
                  "Cray T3D remote copy transfer p0 -> p2, 65 MB");
    machine::Machine m(machine::SystemKind::CrayT3D, 4);
    core::Characterizer c(m);
    auto cfg = bench::copySliceGrid(4_MiB);
    core::Surface sl = c.remoteTransfer(
        remote::TransferMethod::Deposit, true, cfg, 0, 2);
    core::Surface ss = c.remoteTransfer(
        remote::TransferMethod::Deposit, false, cfg, 0, 2);
    sl.print(std::cout);
    ss.print(std::cout);
    bench::compare({
        {"contiguous (MB/s)", 120, ss.at(65 * 1_MiB, 1)},
        {"strided loads @16 (load-limited)", 43,
         sl.at(65 * 1_MiB, 16)},
        {"strided remote stores @16", 55, ss.at(65 * 1_MiB, 16)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
