/**
 * @file
 * Validation of the cost model itself — the paper's central claim:
 * "measurements of key performance parameters ... can then be
 * combined to obtain a realistic model of memory system performance"
 * (Section 1).
 *
 * We characterize each machine on a coarse grid, then query the
 * surface at points *between* the grid (working sets and strides it
 * never measured) and compare the interpolated prediction with a
 * direct simulation of that exact point.
 */

#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "kernels/remote_kernels.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Extra (Section 1)",
                  "cost-model validation: interpolated prediction vs "
                  "direct measurement");

    std::printf("%-12s %8s %8s %12s %12s %8s\n", "machine", "ws",
                "stride", "predicted", "measured", "error");
    double worst = 0;
    double sum_abs = 0;
    int count = 0;
    for (auto kind :
         {machine::SystemKind::Dec8400, machine::SystemKind::CrayT3D,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        core::Characterizer c(m);
        core::CharacterizeConfig coarse;
        coarse.workingSets = {512,    2_KiB,  8_KiB, 32_KiB,
                              128_KiB, 512_KiB, 2_MiB, 8_MiB};
        coarse.strides = {1, 2, 4, 8, 16, 32, 64, 128};
        coarse.capBytes = 4_MiB;
        const core::Surface s = c.localLoads(0, coarse);

        // Off-grid probes: geometric midpoints of the grid cells.
        struct Probe
        {
            std::uint64_t ws;
            std::uint64_t stride;
        };
        for (const Probe p : {Probe{3_KiB, 3}, Probe{48_KiB, 6},
                              Probe{192_KiB, 12}, Probe{768_KiB, 24},
                              Probe{3_MiB, 48}, Probe{6_MiB, 3}}) {
            const double predicted = s.interpolate(
                static_cast<double>(p.ws),
                static_cast<double>(p.stride));
            kernels::KernelParams kp;
            kp.wsBytes = p.ws;
            kp.stride = p.stride;
            kp.capBytes = 4_MiB;
            const double measured =
                kernels::loadSumOn(m, 0, kp).mbs;
            const double err = (predicted - measured) / measured;
            worst = std::max(worst, std::abs(err));
            sum_abs += std::abs(err);
            ++count;
            std::printf("%-12s %8s %8llu %12.0f %12.0f %7.1f%%\n",
                        machine::systemName(kind).c_str(),
                        formatSize(p.ws).c_str(),
                        static_cast<unsigned long long>(p.stride),
                        predicted, measured, 100 * err);
        }
    }
    std::printf("\nmean |error| %.1f%%, worst %.1f%% over %d "
                "off-grid probes — the\nempirical surfaces predict "
                "unmeasured points well enough to drive\ncompiler "
                "decisions, which is the paper's thesis.\n",
                100 * sum_abs / count, 100 * worst, count);
    return 0;
}
