/**
 * @file
 * Regenerates Figure 15: total application performance of the 2D-FFT
 * benchmark on 4 processors of a Cray T3D, a DEC 8400, and a Cray
 * T3E.
 */

#include "fft_common.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 15",
                  "2D-FFT overall application performance, 4 "
                  "processors");
    auto sweep = bench::runFftSweep(obs.jobs);
    bench::printFftTable(sweep, "MFlop/s total",
                         [](const fft::Fft2dResult &r) {
                             return r.overallMFlops;
                         });
    const auto &t3d = sweep[0].results[3];  // n = 256
    const auto &dec = sweep[1].results[3];
    const auto &t3e = sweep[2].results[3];
    bench::compare({
        {"T3D @ 256x256 (MFlop/s)", 133, t3d.overallMFlops},
        {"DEC 8400 @ 256x256", 220, dec.overallMFlops},
        {"T3E @ 256x256", 330, t3e.overallMFlops},
    });
    std::printf("Paper: the 8400 improvement over the T3D stays 'a "
                "factor below two'\n(model: %.2fx), and the T3E runs "
                "about 50%% above the 8400 (model:\n%.2fx).\n",
                dec.overallMFlops / t3d.overallMFlops,
                t3e.overallMFlops / dec.overallMFlops);
    return 0;
}
