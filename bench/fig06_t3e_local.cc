/**
 * @file
 * Regenerates Figure 6: load bandwidth of the Cray T3E for different
 * access patterns and working sets; one processor active.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 6",
                  "Cray T3E local load bandwidth (stride x working "
                  "set), one processor");
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    core::Surface s = bench::sweep(
        m, core::SweepSpec::localLoads(0),
        bench::surfaceGrid(bench::fullRun(argc, argv), 8_MiB,
                              4_MiB),
        obs.jobs);
    s.print(std::cout);
    bench::compare({
        {"L1 plateau (MB/s)", 1100, s.at(4_KiB, 1)},
        {"L2 plateau, strided", 700, s.at(64_KiB, 8)},
        {"DRAM contiguous (streams)", 430, s.at(8_MiB, 1)},
        {"DRAM strided", 42, s.at(8_MiB, 32)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
