/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: host-side
 * throughput of the core components (cache probes, hierarchy
 * accesses, DRAM calendar, torus packets, event queue).  These guard
 * against performance regressions in the simulation engine — the
 * figure benches sweep hundreds of grid points and depend on them.
 */

#include <benchmark/benchmark.h>

#include "fft/fft1d.hh"
#include "machine/configs.hh"
#include "machine/machine.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "noc/torus.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/units.hh"

namespace {

using namespace gasnub;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 96_KiB;
    cfg.lineBytes = 64;
    cfg.assoc = 3;
    cfg.writePolicy = mem::WritePolicy::WriteBack;
    cfg.allocPolicy = mem::AllocPolicy::ReadWriteAllocate;
    mem::Cache cache(cfg);
    sim::Rng rng(1);
    for (auto _ : state) {
        const Addr a = rng.below(1_MiB) & ~7ull;
        benchmark::DoNotOptimize(
            cache.access(a, mem::AccessType::Read));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyReadStream(benchmark::State &state)
{
    mem::MemoryHierarchy m(machine::crayT3eNode("bm"));
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.read(a));
        a += 8;
        if (a >= 32_MiB) {
            a = 0;
            m.resetTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyReadStream);

void
BM_HierarchyStridedReads(benchmark::State &state)
{
    mem::MemoryHierarchy m(machine::dec8400Node("bm"));
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.read(a));
        a += 8 * 32;
        if (a >= 32_MiB) {
            a = 0;
            m.resetTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyStridedReads);

void
BM_TorusPacket(benchmark::State &state)
{
    noc::Torus torus(machine::t3eTorusConfig(64));
    sim::Rng rng(2);
    Tick t = 0;
    for (auto _ : state) {
        const NodeId src = static_cast<NodeId>(rng.below(64));
        NodeId dst = static_cast<NodeId>(rng.below(64));
        if (dst == src)
            dst = (dst + 1) % 64;
        benchmark::DoNotOptimize(torus.send(src, dst, 64, t));
        t += 10000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TorusPacket);

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(q.now() + 1 + (i * 7) % 32,
                       [&sink] { ++sink; });
        q.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueue);

void
BM_RemoteDepositBlock(benchmark::State &state)
{
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    remote::TransferRequest req;
    req.src = 0;
    req.dst = 1;
    req.srcAddr = 0;
    req.dstAddr = 1ull << 33;
    req.words = 512;
    Tick t = 0;
    for (auto _ : state) {
        t = m.remote().transfer(req, remote::TransferMethod::Deposit,
                                t);
        if (t > 1ull << 40) {
            m.resetTiming();
            t = 0;
        }
    }
    state.SetItemsProcessed(state.iterations() * req.words);
}
BENCHMARK(BM_RemoteDepositBlock);

void
BM_Fft1d(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<fft::Complex> data(n, fft::Complex(1.0, -0.5));
    for (auto _ : state) {
        fft::fft(data.data(), n, false);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft1d)->Arg(256)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
