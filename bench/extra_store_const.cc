/**
 * @file
 * The Store-Constant benchmark (paper Section 4.2): the dual of
 * Load-Sum, written "to evaluate store performance"; the paper did
 * not plot it ("the resulting graphs did not add enough insight"),
 * but it confirmed the write-back policies and the write-back
 * queues — which is exactly what this bench shows.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::banner("Extra (Section 4.2)",
                  "Store-Constant bandwidth on all three machines");
    for (auto kind :
         {machine::SystemKind::Dec8400, machine::SystemKind::CrayT3D,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        core::Characterizer c(m);
        core::Surface s = c.localStores(
            0, bench::surfaceGrid(bench::fullRun(argc, argv), 8_MiB,
                                  4_MiB));
        s.print(std::cout);
    }
    std::printf("The T3D's coalescing write-back queue keeps strided "
                "stores fast;\nthe write-back caches of the 8400 and "
                "T3E make strided stores pay a\nread-for-ownership "
                "per line.\n");
    return 0;
}
