/**
 * @file
 * Ablation (DESIGN.md #1): disable the stream / read-ahead units and
 * watch the contiguous DRAM ridge collapse.  The paper's footnote 3
 * reports exactly this natural experiment: an early T3E test vehicle
 * with streaming disabled measured ~120 MB/s instead of 430 MB/s.
 * The T3D's read-ahead logic is switchable at program load time
 * (Section 3.2), which this bench flips directly.
 */

#include "bench_util.hh"
#include "kernels/remote_kernels.hh"

int
main(int, char **)
{
    using namespace gasnub;
    bench::banner("Ablation",
                  "stream / read-ahead units on vs off (contiguous "
                  "DRAM loads)");
    std::printf("%-12s %12s %12s %10s\n", "machine", "streams on",
                "streams off", "ratio");
    for (auto kind :
         {machine::SystemKind::Dec8400, machine::SystemKind::CrayT3D,
          machine::SystemKind::CrayT3E}) {
        machine::Machine m(kind, 4);
        kernels::KernelParams p;
        p.wsBytes = 8_MiB;
        p.stride = 1;
        p.capBytes = 8_MiB;
        const double on = kernels::loadSumOn(m, 0, p).mbs;
        m.node(0).readAhead().setEnabled(false);
        // loadSumOn resets timing but honours the load-time switch.
        const double off = kernels::loadSumOn(m, 0, p).mbs;
        m.node(0).readAhead().setEnabled(true);
        std::printf("%-12s %12.0f %12.0f %10.2f\n",
                    machine::systemName(kind).c_str(), on, off,
                    on / off);
    }
    std::printf("\nPaper footnote 3: the T3E without streaming "
                "support measured about\n120 MB/s (3.6x slower); "
                "strided accesses are unaffected because they\nnever "
                "form streams.  The DEC 8400 row is a counterfactual: "
                "its stream\nengine is the calibrated pacing path of "
                "the model (the paper never\nmeasured the 8400 with "
                "streams off), so the off column exceeds the\non "
                "column there.\n");
    return 0;
}
