/**
 * @file
 * Regenerates Figure 8: Cray T3E transfer bandwidth under the deposit
 * model (shmem_iput), p0 -> push -> p1, with the even/odd-stride
 * ripples from destination bank conflicts.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 8",
                  "Cray T3E deposit (shmem_iput) transfer bandwidth");
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    auto cfg = bench::remoteGrid(bench::fullRun(argc, argv), 16_MiB,
                                 1_MiB);
    core::Surface s = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                false, 0, 1),
        cfg, obs.jobs);
    s.print(std::cout);
    std::printf("Ripples: even strides hit the same destination bank "
                "parity in\nconsecutive receives (paper Section "
                "5.6).\n");
    bench::compare({
        {"iput contiguous (MB/s)", 350, s.at(8_MiB, 1)},
        {"iput even stride", 70, s.at(8_MiB, 16)},
        {"iput odd stride", 140, s.at(8_MiB, 15)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
