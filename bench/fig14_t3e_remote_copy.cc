/**
 * @file
 * Regenerates Figure 14: Cray T3E remote copy transfer p0 -> p1 at a
 * 65 MB working set: strided loads (iget) vs strided remote stores
 * (iput), with the even/odd ripples.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace gasnub;
    bench::Observability obs(argc, argv);
    bench::banner("Figure 14",
                  "Cray T3E remote copy transfer p0 -> p1, 65 MB");
    machine::Machine m(machine::SystemKind::CrayT3E, 4);
    auto cfg = bench::copySliceGrid(4_MiB);
    core::Surface sl = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Fetch,
                                true, 0, 1),
        cfg, obs.jobs);
    core::Surface ss = bench::sweep(
        m,
        core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                false, 0, 1),
        cfg, obs.jobs);
    sl.print(std::cout);
    ss.print(std::cout);
    std::printf("Fetch (strided gathers) is flat ~140; deposit "
                "(strided scatters)\nripples between ~70 (even) and "
                "~140 (odd) — hence the Fx back-end\ngenerates fetch "
                "code for the T3E (paper Section 9).\n");
    bench::compare({
        {"contiguous (MB/s)", 350, sl.at(65 * 1_MiB, 1)},
        {"strided loads @16 (flat)", 140, sl.at(65 * 1_MiB, 16)},
        {"strided stores @16 (even)", 70, ss.at(65 * 1_MiB, 16)},
        {"strided stores @15 (odd)", 140, ss.at(65 * 1_MiB, 15)},
    });
    obs.finish(m.statsGroup());
    return 0;
}
