// Scratch calibration: distributed 2D-FFT rates vs Figures 15-17.
#include <cstdio>
#include "fft/fft2d_dist.hh"

using namespace gasnub;

static void run(machine::SystemKind kind, const char* name) {
    machine::Machine m(kind, 4);
    fft::DistributedFft2d app(m);
    std::printf("%-10s", name);
    for (std::uint64_t n : {32, 64, 128, 256, 512, 1024}) {
        fft::Fft2dConfig cfg; cfg.n = n;
        auto r = app.run(cfg);
        std::printf("  n=%4llu ov=%4.0f cp=%4.0f cm=%4.0f |",
                    (unsigned long long)n, r.overallMFlops,
                    r.computeMFlops, r.commMBs);
    }
    std::printf("\n");
}

int main() {
    std::printf("targets @256: T3D ov 133, 8400 ov 220, T3E ov 330\n");
    std::printf("fig16 @256 totals: T3D ~150, 8400 ~400-470, T3E ~800\n");
    run(machine::SystemKind::CrayT3D, "T3D");
    run(machine::SystemKind::Dec8400, "8400");
    run(machine::SystemKind::CrayT3E, "T3E");
    return 0;
}
