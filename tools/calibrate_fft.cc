// Scratch calibration: distributed 2D-FFT rates vs Figures 15-17.
// Accepts --jobs N (default: GASNUB_JOBS, then hardware concurrency);
// the three machine rows run in parallel on private replicas and
// print in a fixed order.
#include <array>
#include <cstdio>
#include <cstring>
#include <vector>
#include "fft/fft2d_dist.hh"
#include "sim/pool.hh"
#include "sim/trace.hh"

using namespace gasnub;

static const std::array<std::uint64_t, 6> kSizes =
    {32, 64, 128, 256, 512, 1024};

int main(int argc, char** argv) {
    int jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (!std::strncmp(argv[i], "--jobs=", 7)) {
            jobs = std::atoi(argv[i] + 7);
        } else {
            std::fprintf(stderr, "usage: calibrate_fft [--jobs N]\n");
            return 2;
        }
    }
    jobs = sim::defaultJobs(jobs);

    std::printf("targets @256: T3D ov 133, 8400 ov 220, T3E ov 330\n");
    std::printf("fig16 @256 totals: T3D ~150, 8400 ~400-470, T3E ~800\n");

    const std::array<std::pair<machine::SystemKind, const char*>, 3>
        rows = {{{machine::SystemKind::CrayT3D, "T3D"},
                 {machine::SystemKind::Dec8400, "8400"},
                 {machine::SystemKind::CrayT3E, "T3E"}}};

    // One job per machine row; each worker builds a private machine
    // (and traces into a private buffer, so replica construction on
    // worker threads never touches the global tracer).
    sim::ThreadPool pool(jobs);
    std::vector<trace::Tracer> tracers(pool.workers());
    std::array<std::array<fft::Fft2dResult, kSizes.size()>, 3> out;
    pool.parallelFor(rows.size(), [&](int w, std::size_t j) {
        trace::ScopedThreadTracer scoped(tracers[w], 0);
        machine::Machine m(rows[j].first, 4);
        fft::DistributedFft2d app(m);
        for (std::size_t i = 0; i < kSizes.size(); ++i) {
            fft::Fft2dConfig cfg;
            cfg.n = kSizes[i];
            out[j][i] = app.run(cfg);
        }
    });

    for (std::size_t j = 0; j < rows.size(); ++j) {
        std::printf("%-10s", rows[j].second);
        for (std::size_t i = 0; i < kSizes.size(); ++i) {
            const fft::Fft2dResult& r = out[j][i];
            std::printf("  n=%4llu ov=%4.0f cp=%4.0f cm=%4.0f |",
                        (unsigned long long)kSizes[i], r.overallMFlops,
                        r.computeMFlops, r.commMBs);
        }
        std::printf("\n");
    }
    return 0;
}
