/**
 * @file
 * Chaos harness: sweep the fault scenario library over the paper's
 * three machines and assert the robustness invariants end to end.
 *
 * Each (machine, scenario) cell runs the gas-runtime 2D-FFT with
 * verified numerics under the scenario's FaultPlan, inside a
 * wall-clock watchdog, twice.  The harness then checks:
 *
 *   - no hang: every run finishes before the watchdog fires
 *     (a wedged run hard-exits 124 instead of blocking CI);
 *   - determinism: both runs agree on every tick and byte;
 *   - recoverable scenarios lose nothing: zero failed ops, the
 *     delivered byte count of the fault-free baseline, and exact FFT
 *     numerics — retries and detours absorb the faults;
 *   - unrecoverable scenarios terminate cleanly: failures surface as
 *     counted failed ops (TransferStatus), never as aborts, and the
 *     delivered bytes stay within the baseline (nothing is forged);
 *   - zero overhead when off: the fault-free baseline built through a
 *     SystemConfig with an empty plan is tick-identical to a plain
 *     Machine, so disabled fault hooks perturb nothing.
 *
 *   chaos [--machine M] [--scenario S] [--faults SPEC] [--n N]
 *         [--watchdog SECONDS] [--stats-json FILE] [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gas/fft2d.hh"
#include "gas/runtime.hh"
#include "machine/machine.hh"
#include "sim/fault.hh"

using namespace gasnub;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: chaos [--machine dec8400|t3d|t3e|all] "
        "[--scenario NAME|all]\n"
        "             [--faults SPEC] [--n N] [--watchdog SECONDS]\n"
        "             [--stats-json FILE] [--list]\n"
        "  --machine M    machine(s) to sweep (default all)\n"
        "  --scenario S   built-in scenario to run (default all; "
        "--list names them)\n"
        "  --faults SPEC  additional custom scenario from a fault "
        "spec or @file\n"
        "  --n N          FFT size (default 64)\n"
        "  --watchdog S   wall-clock budget per run in seconds "
        "(default 120)\n"
        "  --stats-json FILE  write the stats tree (including the\n"
        "                 timeAccount attribution ledger) of the last\n"
        "                 scenario run to FILE; feed it to tools/report\n"
        "  --list         print the scenario library and exit\n");
    std::exit(2);
}

/** One run's observable fingerprint. */
struct RunResult
{
    Tick totalTicks = 0;
    double maxError = 0;
    std::uint64_t failedOps = 0;
    std::uint64_t retries = 0;
    double deliveredBytes = 0;

    bool operator==(const RunResult &o) const
    {
        return totalTicks == o.totalTicks && maxError == o.maxError &&
               failedOps == o.failedOps && retries == o.retries &&
               deliveredBytes == o.deliveredBytes;
    }
};

/**
 * The gas 2D-FFT under @p plan on a fresh machine of @p kind.  A
 * non-empty @p stats_json additionally builds the attribution ledger
 * and dumps the machine's stats tree to that file.
 */
RunResult
runOnce(machine::SystemKind kind, const sim::FaultPlan &plan,
        std::uint64_t n, const std::string &stats_json = "")
{
    machine::SystemConfig sys;
    sys.kind = kind;
    sys.numNodes = 4;
    sys.faults = plan;
    sys.attribution = !stats_json.empty();
    machine::Machine m(sys);

    gas::RuntimeConfig rcfg;
    rcfg.regionsPerNode = 2;
    // A little extra retry headroom over the library default: chaos
    // scenarios are judged on "recoverable means nothing lost", so a
    // deterministic streak of flaky failures must not exhaust the
    // budget.
    rcfg.retry.maxAttempts = 6;
    gas::Runtime rt(m, rcfg);

    gas::Fft2d app(rt);
    gas::Fft2dConfig cfg;
    cfg.n = n;
    cfg.verifyNumerics = true;
    const fft::Fft2dResult r = app.run(cfg);

    RunResult out;
    out.totalTicks = r.totalTicks;
    out.maxError = r.maxError;
    out.failedOps = rt.failedOps();
    out.retries = rt.retries();
    out.deliveredBytes = rt.deliveredBytes();
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "chaos: cannot open %s\n",
                         stats_json.c_str());
            std::exit(2);
        }
        m.statsGroup().dumpJson(os);
        os << "\n";
    }
    return out;
}

int violations = 0;

void
check(bool ok, const std::string &label, const std::string &what)
{
    if (ok)
        return;
    ++violations;
    std::fprintf(stderr, "chaos: FAIL [%s] %s\n", label.c_str(),
                 what.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string machine_arg = "all";
    std::string scenario_arg = "all";
    std::string faults_arg;
    std::string stats_json;
    std::uint64_t n = 64;
    double watchdog_s = 120;
    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        if (opt == "--list") {
            for (const sim::ChaosScenario &s : sim::chaosScenarios())
                std::printf("%-20s %-13s %s\n", s.name.c_str(),
                            s.recoverable ? "recoverable"
                                          : "unrecoverable",
                            s.spec.empty() ? "(no faults)"
                                           : s.spec.c_str());
            return 0;
        }
        if (opt == "--help" || opt == "-h")
            usage();
        if (i + 1 >= argc)
            usage();
        const std::string val = argv[++i];
        if (opt == "--machine")
            machine_arg = val;
        else if (opt == "--scenario")
            scenario_arg = val;
        else if (opt == "--faults")
            faults_arg = val;
        else if (opt == "--n")
            n = std::strtoull(val.c_str(), nullptr, 10);
        else if (opt == "--watchdog")
            watchdog_s = std::strtod(val.c_str(), nullptr);
        else if (opt == "--stats-json")
            stats_json = val;
        else
            usage();
    }
    if (n < 8 || watchdog_s <= 0)
        usage();

    std::vector<machine::SystemKind> kinds;
    if (machine_arg == "all" || machine_arg == "dec8400")
        kinds.push_back(machine::SystemKind::Dec8400);
    if (machine_arg == "all" || machine_arg == "t3d")
        kinds.push_back(machine::SystemKind::CrayT3D);
    if (machine_arg == "all" || machine_arg == "t3e")
        kinds.push_back(machine::SystemKind::CrayT3E);
    if (kinds.empty())
        usage();

    std::vector<sim::ChaosScenario> scenarios;
    for (const sim::ChaosScenario &s : sim::chaosScenarios())
        if (scenario_arg == "all" || scenario_arg == s.name)
            scenarios.push_back(s);
    if (!faults_arg.empty())
        scenarios.push_back({"custom", faults_arg, false});
    if (scenarios.empty()) {
        std::fprintf(stderr,
                     "chaos: no scenario named '%s' (--list)\n",
                     scenario_arg.c_str());
        return 2;
    }

    std::printf("%-9s %-20s %12s %8s %8s %10s %12s  %s\n", "machine",
                "scenario", "ticks", "retries", "failed", "maxError",
                "delivered", "verdict");
    for (const machine::SystemKind kind : kinds) {
        const std::string mname = machine::systemName(kind);

        // Fault-free reference, built both ways: the plain-Machine
        // run proves an empty plan adds zero overhead, and its
        // delivered-byte count is the conservation baseline below.
        RunResult base;
        {
            sim::Watchdog wd(watchdog_s, mname + "/baseline");
            base = runOnce(kind, sim::FaultPlan(), n);
            machine::Machine plain(kind, 4);
            gas::RuntimeConfig rcfg;
            rcfg.regionsPerNode = 2;
            gas::Runtime rt(plain, rcfg);
            gas::Fft2d app(rt);
            gas::Fft2dConfig cfg;
            cfg.n = n;
            cfg.verifyNumerics = true;
            const fft::Fft2dResult r = app.run(cfg);
            check(r.totalTicks == base.totalTicks &&
                      r.maxError == base.maxError,
                  mname + "/baseline",
                  "empty fault plan perturbs timing: plain machine "
                  "and empty-plan machine disagree");
        }

        for (const sim::ChaosScenario &s : scenarios) {
            const std::string label = mname + "/" + s.name;
            sim::Watchdog wd(watchdog_s, label);
            const sim::FaultPlan plan = sim::FaultPlan::resolve(s.spec);
            // Run a carries the attribution ledger when requested,
            // run b never does — so the determinism check doubles as
            // proof that accounting perturbs no timing.
            const RunResult a = runOnce(kind, plan, n, stats_json);
            const RunResult b = runOnce(kind, plan, n);
            check(a == b, label,
                  "two identical runs disagree; fault injection is "
                  "not deterministic (or attribution perturbs "
                  "timing)");
            if (s.recoverable) {
                check(a.failedOps == 0, label,
                      "recoverable scenario lost " +
                          std::to_string(a.failedOps) +
                          " op(s) for good");
                check(a.deliveredBytes == base.deliveredBytes, label,
                      "bytes not conserved: delivered " +
                          std::to_string(a.deliveredBytes) + " vs " +
                          std::to_string(base.deliveredBytes) +
                          " fault-free");
            } else {
                check(a.deliveredBytes <= base.deliveredBytes, label,
                      "delivered more bytes than the workload sent");
            }
            if (a.failedOps == 0)
                check(a.maxError <= 1e-6, label,
                      "no op failed but FFT numerics are off by " +
                          std::to_string(a.maxError));
            const bool cell_ok =
                a == b &&
                (!s.recoverable ||
                 (a.failedOps == 0 &&
                  a.deliveredBytes == base.deliveredBytes)) &&
                (a.failedOps != 0 || a.maxError <= 1e-6);
            std::printf("%-9s %-20s %12llu %8llu %8llu %10.2e %12.0f"
                        "  %s\n",
                        mname.c_str(), s.name.c_str(),
                        static_cast<unsigned long long>(a.totalTicks),
                        static_cast<unsigned long long>(a.retries),
                        static_cast<unsigned long long>(a.failedOps),
                        a.maxError, a.deliveredBytes,
                        cell_ok ? "ok" : "FAIL");
        }
    }

    if (violations) {
        std::fprintf(stderr, "chaos: %d invariant violation(s)\n",
                     violations);
        return 1;
    }
    std::printf("chaos: all invariants hold\n");
    return 0;
}
