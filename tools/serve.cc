/**
 * @file
 * Transfer-planning query front end over surface packs.
 *
 *   serve --pack FILE [--pack FILE ...] [--binary] [--threads N]
 *         [--batch N] [--no-cache] [--cache-capacity N]
 *         [--cache-shards N] [--stats] [--metrics-out FILE]
 *         [--metrics-interval-ms N] [--slow-query-us N]
 *         [--trace-out FILE]
 *
 * Serving side of the paper's measure-once / decide-often workflow
 * (Section 4.1): the packs carry each machine's characterization
 * surfaces, and every query — machine x access pattern x working
 * set — is answered with the best implementation method and its
 * predicted bandwidth, exactly what the Fx/HPF back end consults per
 * communication step.  Queries stream on stdin, answers on stdout in
 * input order, so any number of clients can multiplex through pipes
 * or a socket relay; batches of --batch queries are planned across
 * --threads workers against one shared immutable PlannerIndex.
 *
 * JSON framing (default) — one object per line:
 *   in:  {"machine": "t3e", "bytes": 1048576, "ws": 1048576,
 *         "stride": 8}
 *   out: {"machine": "t3e", "option": "fetch-sload",
 *         "method": "fetch", "strideOnSource": true,
 *         "mbs": 154.2, "seconds": 0.0068}
 *
 * Control commands ride the same stream: {"cmd": "metrics"} answers
 * everything queued so far, then emits one compact JSON metrics
 * exposition line on stdout — an on-demand scrape without a second
 * channel.
 *
 * Binary framing (--binary) — fixed 32-byte records both ways, host
 * little-endian; see docs/planner_service.md for the exact layout.
 * Malformed queries are fatal with a record/line diagnostic (exit 1
 * via GASNUB_FATAL, exit 2 for JSON syntax), never silent garbage.
 *
 * Live telemetry (--metrics-out / --slow-query-us / --trace-out)
 * feeds the process-wide metrics::Registry: request/batch counters,
 * per-query service-time and batch-size histograms with rolling
 * 1s/10s/60s windows, per-worker query counters, decision-cache
 * gauges, a structured slow-query log, and per-query Chrome-trace
 * spans.  Answers are byte-identical with telemetry on or off (the
 * CLI test diffs them), and with everything off the hot path pays a
 * single relaxed load per batch.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hh"
#include "json_util.hh"
#include "metrics_flush.hh"
#include "serve/planner_index.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"

using namespace gasnub;
using tooljson::JsonParser;
using tooljson::JsonValue;

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: serve --pack FILE [--pack FILE ...] [options]\n"
          "  --pack FILE        gas-pack-1 surface pack (one per "
          "machine; repeatable)\n"
          "  --binary           32-byte binary records instead of "
          "JSON lines\n"
          "  --threads N        workers per batch (default 1)\n"
          "  --batch N          queries planned per dispatch "
          "(default 1024)\n"
          "  --no-cache         disable the decision cache\n"
          "  --cache-capacity N decision-cache slots (default "
          "65536)\n"
          "  --cache-shards N   decision-cache shards (default 16)\n"
          "  --stats            cache hit/miss/eviction stats on "
          "stderr at EOF\n"
          "  --metrics-out FILE live metrics exposition, rewritten "
          "atomically\n"
          "                     (.json -> JSON, else Prometheus "
          "text)\n"
          "  --metrics-interval-ms N\n"
          "                     flush period for --metrics-out "
          "(default 1000)\n"
          "  --slow-query-us N  log queries taking >= N us to "
          "stderr\n"
          "  --trace-out FILE   Chrome-trace spans, one per query\n"
          "Answers plan queries (machine x pattern x working set -> "
          "method +\npredicted bandwidth) from packed "
          "characterization surfaces; see\ndocs/planner_service.md "
          "for framing and examples.\n";
}

[[noreturn]] void
usage()
{
    printUsage(std::cerr);
    std::exit(2);
}

/** One parsed query: machine id + the planner query. */
struct Request
{
    std::size_t machine = 0;
    core::TransferQuery query;
};

/** Fixed 32-byte binary frames (see docs/planner_service.md). */
struct BinaryRequest
{
    std::uint32_t magic;   ///< 'GQRY' = 0x59525147 little-endian
    std::uint32_t machine; ///< index into the pack list
    std::uint64_t bytes;
    std::uint64_t wsBytes;
    std::uint64_t stride;
};
static_assert(sizeof(BinaryRequest) == 32);

struct BinaryResponse
{
    std::uint32_t magic; ///< 'GANS' = 0x534e4147 little-endian
    std::uint32_t optionIndex;
    double predictedMBs;
    double predictedSeconds;
    std::uint8_t method; ///< 0 pull, 1 fetch, 2 deposit
    std::uint8_t strideOnSource;
    std::uint16_t reserved;
    std::uint32_t pad;
};
static_assert(sizeof(BinaryResponse) == 32);

constexpr std::uint32_t kQueryMagic = 0x59525147u;
constexpr std::uint32_t kAnswerMagic = 0x534e4147u;

std::uint8_t
methodCode(remote::TransferMethod m)
{
    switch (m) {
    case remote::TransferMethod::CoherentPull:
        return 0;
    case remote::TransferMethod::Fetch:
        return 1;
    case remote::TransferMethod::Deposit:
        return 2;
    }
    GASNUB_PANIC("bad transfer method");
}

std::uint64_t
numberField(const JsonValue &v, const char *key,
            std::uint64_t line_no)
{
    const JsonValue *f = v.find(key);
    if (!f || f->kind != JsonValue::Kind::Number || f->number < 0)
        GASNUB_FATAL("serve: query line ", line_no,
                     ": missing or bad '", key,
                     "' (want a non-negative number)");
    return static_cast<std::uint64_t>(f->number);
}

/**
 * Hot-path telemetry handles, resolved once at startup.  When off
 * the planning loops are the pre-telemetry code paths verbatim; when
 * on, workers only stamp per-query span bounds (monotonic micros) —
 * histograms, the slow-query log, and trace spans are fed from the
 * main thread after the join, because the Tracer is single-threaded
 * and the slow-query log wants the answer's option label.
 */
struct Telemetry
{
    bool on = false;
    std::uint64_t slowUs = 0; ///< 0 = no slow-query log
    metrics::Counter *requests = nullptr;
    metrics::Counter *batches = nullptr;
    metrics::Counter *slow = nullptr;
    metrics::Histogram *latencyUs = nullptr;
    metrics::Histogram *batchSize = nullptr;
    metrics::Gauge *queueDepth = nullptr;
    std::vector<metrics::Counter *> workers;
    trace::Tracer *tracer = nullptr;
    trace::TrackId track = 0;
    std::vector<std::uint64_t> t0, t1; ///< per-query span bounds
};

/** Plan requests [0, n) into @p answers across @p threads; queries
 *  get ids first_id, first_id + 1, ... for spans and the slow log. */
void
planBatch(const serve::PlannerIndex &index,
          const std::vector<Request> &requests, std::size_t n,
          int threads, std::vector<serve::PlanAnswer> &answers,
          Telemetry &telem, std::uint64_t first_id)
{
    answers.resize(n);
    if (!telem.on) {
        if (threads <= 1 || n < 2) {
            for (std::size_t i = 0; i < n; ++i)
                answers[i] = index.plan(requests[i].machine,
                                        requests[i].query);
            return;
        }
        const std::size_t workers = std::min<std::size_t>(
            static_cast<std::size_t>(threads), n);
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                for (std::size_t i = w; i < n; i += workers)
                    answers[i] = index.plan(requests[i].machine,
                                            requests[i].query);
            });
        }
        for (std::thread &t : pool)
            t.join();
        return;
    }

    telem.queueDepth->set(static_cast<std::int64_t>(n));
    telem.t0.resize(n);
    telem.t1.resize(n);
    const std::size_t workers =
        (threads <= 1 || n < 2)
            ? 1
            : std::min<std::size_t>(static_cast<std::size_t>(threads),
                                    n);
    auto run = [&](std::size_t w) {
        std::uint64_t done = 0;
        for (std::size_t i = w; i < n; i += workers) {
            telem.t0[i] = metrics::monotonicMicros();
            answers[i] = index.plan(requests[i].machine,
                                    requests[i].query);
            telem.t1[i] = metrics::monotonicMicros();
            ++done;
        }
        telem.workers[w]->add(done);
    };
    if (workers == 1) {
        run(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back([&run, w] { run(w); });
        for (std::thread &t : pool)
            t.join();
    }

    const std::int64_t now_sec = metrics::monotonicSeconds();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t us = telem.t1[i] - telem.t0[i];
        telem.latencyUs->sample(us, now_sec);
        if (telem.tracer) {
            // Ticks are picoseconds; span bounds are monotonic
            // microseconds of wall time.
            constexpr std::uint64_t kPsPerUs = 1000000;
            telem.tracer->record(trace::Category::Sim, telem.track,
                                 "plan", telem.t0[i] * kPsPerUs,
                                 telem.t1[i] * kPsPerUs, "id",
                                 first_id + i, "us", us);
        }
        if (telem.slowUs && us >= telem.slowUs) {
            telem.slow->add(1);
            const serve::PlanAnswer &a = answers[i];
            const core::TransferQuery &q = requests[i].query;
            GASNUB_LOG("slow_query id=", first_id + i,
                       " machine=", index.machineName(a.machine),
                       " bytes=", q.bytes, " ws=", q.wsBytes,
                       " stride=", q.stride, " us=", us,
                       " option=", a.label);
        }
    }
    telem.requests->add(n);
    telem.batches->add(1);
    telem.batchSize->sample(n, now_sec);
    telem.queueDepth->set(0);
}

int
runJson(const serve::PlannerIndex &index, int threads,
        std::size_t batch, Telemetry &telem)
{
    std::vector<Request> requests(batch);
    std::vector<serve::PlanAnswer> answers;
    std::string line;
    std::uint64_t line_no = 0;
    std::size_t n = 0;
    std::uint64_t served = 0;
    std::ostringstream out;

    auto flush = [&] {
        if (n == 0)
            return;
        planBatch(index, requests, n, threads, answers, telem,
                  served);
        out.str("");
        for (std::size_t i = 0; i < n; ++i) {
            const serve::PlanAnswer &a = answers[i];
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "{\"machine\": \"%s\", \"option\": \"%.*s\", "
                "\"method\": \"%s\", \"strideOnSource\": %s, "
                "\"mbs\": %.17g, \"seconds\": %.17g}\n",
                index.machineName(a.machine).c_str(),
                static_cast<int>(a.label.size()), a.label.data(),
                remote::methodName(a.method),
                a.strideOnSource ? "true" : "false", a.predictedMBs,
                a.predictedSeconds);
            out << buf;
        }
        std::fputs(out.str().c_str(), stdout);
        served += n;
        n = 0;
    };

    while (std::getline(std::cin, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JsonParser parser(line,
                          "serve: query line " +
                              std::to_string(line_no));
        const JsonValue v = parser.parse();
        const JsonValue *cmd = v.find("cmd");
        if (cmd) {
            if (cmd->kind != JsonValue::Kind::String ||
                cmd->string != "metrics")
                GASNUB_FATAL("serve: query line ", line_no,
                             ": unknown control command; the only "
                             "one is {\"cmd\": \"metrics\"}");
            // Answer everything queued first so the dump reflects
            // every query that precedes it on the stream.
            flush();
            std::ostringstream ms;
            metrics::Registry::instance().exportJson(
                ms, metrics::monotonicSeconds(), true);
            ms << "\n";
            std::fputs(ms.str().c_str(), stdout);
            std::fflush(stdout);
            continue;
        }
        const JsonValue *machine = v.find("machine");
        if (!machine ||
            machine->kind != JsonValue::Kind::String)
            GASNUB_FATAL("serve: query line ", line_no,
                         ": missing or bad 'machine' (want a "
                         "string)");
        const int id = index.machineId(machine->string);
        if (id < 0)
            GASNUB_FATAL("serve: query line ", line_no,
                         ": unknown machine '", machine->string,
                         "'; the loaded packs serve ",
                         index.numMachines(), " machine(s)");
        Request &r = requests[n];
        r.machine = static_cast<std::size_t>(id);
        r.query.bytes = numberField(v, "bytes", line_no);
        r.query.wsBytes = numberField(v, "ws", line_no);
        r.query.stride = numberField(v, "stride", line_no);
        if (++n == batch)
            flush();
    }
    flush();
    std::fflush(stdout);
    std::fprintf(stderr, "serve: answered %llu queries\n",
                 static_cast<unsigned long long>(served));
    return 0;
}

int
runBinary(const serve::PlannerIndex &index, int threads,
          std::size_t batch, Telemetry &telem)
{
    std::vector<BinaryRequest> raw(batch);
    std::vector<Request> requests(batch);
    std::vector<serve::PlanAnswer> answers;
    std::vector<BinaryResponse> responses(batch);
    std::uint64_t record_no = 0;
    std::uint64_t served = 0;

    for (;;) {
        const std::size_t want = batch * sizeof(BinaryRequest);
        const std::size_t got_bytes = std::fread(
            reinterpret_cast<char *>(raw.data()), 1, want, stdin);
        if (got_bytes % sizeof(BinaryRequest) != 0)
            GASNUB_FATAL("serve: truncated binary request after "
                         "record ", record_no,
                         ": trailing ",
                         got_bytes % sizeof(BinaryRequest),
                         " byte(s) is not a whole 32-byte GQRY "
                         "record");
        const std::size_t got = got_bytes / sizeof(BinaryRequest);
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i) {
            ++record_no;
            const BinaryRequest &q = raw[i];
            if (q.magic != kQueryMagic)
                GASNUB_FATAL("serve: binary record ", record_no,
                             ": bad magic ", q.magic,
                             "; expected GQRY framing (see "
                             "docs/planner_service.md)");
            if (q.machine >= index.numMachines())
                GASNUB_FATAL("serve: binary record ", record_no,
                             ": machine id ", q.machine,
                             " out of range (", index.numMachines(),
                             " loaded)");
            requests[i].machine = q.machine;
            requests[i].query.bytes = q.bytes;
            requests[i].query.wsBytes = q.wsBytes;
            requests[i].query.stride = q.stride;
        }
        planBatch(index, requests, got, threads, answers, telem,
                  served);
        for (std::size_t i = 0; i < got; ++i) {
            const serve::PlanAnswer &a = answers[i];
            BinaryResponse &r = responses[i];
            r.magic = kAnswerMagic;
            r.optionIndex = a.optionIndex;
            r.predictedMBs = a.predictedMBs;
            r.predictedSeconds = a.predictedSeconds;
            r.method = methodCode(a.method);
            r.strideOnSource = a.strideOnSource ? 1 : 0;
            r.reserved = 0;
            r.pad = 0;
        }
        if (std::fwrite(responses.data(), sizeof(BinaryResponse),
                        got, stdout) != got)
            GASNUB_FATAL("serve: short write on stdout");
        served += got;
    }
    std::fflush(stdout);
    std::fprintf(stderr, "serve: answered %llu queries\n",
                 static_cast<unsigned long long>(served));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    logTimestampsFromEnv();

    std::vector<std::string> packs;
    bool binary = false;
    int threads = 1;
    std::size_t batch = 1024;
    bool stats = false;
    std::string metrics_out;
    int metrics_interval_ms = 1000;
    std::uint64_t slow_query_us = 0;
    std::string trace_out;
    serve::IndexConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "serve: option " << opt
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (opt == "--help" || opt == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (opt == "--pack")
            packs.push_back(val());
        else if (opt == "--binary")
            binary = true;
        else if (opt == "--threads")
            threads = std::atoi(val().c_str());
        else if (opt == "--batch")
            batch = static_cast<std::size_t>(
                std::atoll(val().c_str()));
        else if (opt == "--no-cache")
            config.cacheCapacity = 0;
        else if (opt == "--cache-capacity")
            config.cacheCapacity = static_cast<std::size_t>(
                std::atoll(val().c_str()));
        else if (opt == "--cache-shards")
            config.cacheShards = static_cast<std::size_t>(
                std::atoll(val().c_str()));
        else if (opt == "--stats")
            stats = true;
        else if (opt == "--metrics-out")
            metrics_out = val();
        else if (opt == "--metrics-interval-ms")
            metrics_interval_ms = std::atoi(val().c_str());
        else if (opt == "--slow-query-us")
            slow_query_us = static_cast<std::uint64_t>(
                std::atoll(val().c_str()));
        else if (opt == "--trace-out")
            trace_out = val();
        else
            usage();
    }
    if (packs.empty() || batch == 0)
        usage();
    if (threads < 1)
        threads = 1;
    if (metrics_interval_ms < 1)
        metrics_interval_ms = 1;

    const serve::PlannerIndex index =
        serve::PlannerIndex::fromPackFiles(packs, config);
    std::fprintf(stderr, "serve: %zu machine(s):", index.numMachines());
    for (std::size_t i = 0; i < index.numMachines(); ++i)
        std::fprintf(stderr, " %s", index.machineName(i).c_str());
    std::fprintf(stderr, "\n");

    // The cache gauges register unconditionally — they power both the
    // exit --stats report and any mid-run exposition, and cost nothing
    // until a collector runs.  Per-query recording is opt-in.
    metrics::Registry &reg = metrics::Registry::instance();
    index.registerMetrics(reg);

    Telemetry telem;
    if (!metrics_out.empty() || !trace_out.empty() ||
        slow_query_us > 0) {
        telem.on = true;
        telem.slowUs = slow_query_us;
        metrics::setEnabled(true);
        telem.requests =
            &reg.counter("serve.requests", "plan queries answered");
        telem.batches = &reg.counter("serve.batches",
                                     "query batches dispatched");
        telem.slow = &reg.counter(
            "serve.slow_queries",
            "queries at or over the --slow-query-us threshold");
        telem.latencyUs = &reg.histogram(
            "serve.latency_us",
            "per-query service time (microseconds)");
        telem.batchSize = &reg.histogram(
            "serve.batch_size", "queries per dispatched batch");
        telem.queueDepth = &reg.gauge(
            "serve.queue_depth",
            "queries parsed and waiting in the current batch");
        for (int w = 0; w < threads; ++w)
            telem.workers.push_back(&reg.counter(
                "serve.worker" + std::to_string(w) + ".queries",
                "queries planned by one worker"));
    }
    if (!trace_out.empty()) {
        telem.tracer = &trace::Tracer::instance();
        telem.tracer->setMask(
            static_cast<std::uint32_t>(trace::Category::Sim));
        telem.track = telem.tracer->track("serve.query");
    }

    int rc;
    {
        toolmetrics::MetricsFlusher flusher(reg, metrics_out,
                                            metrics_interval_ms);
        rc = binary ? runBinary(index, threads, batch, telem)
                    : runJson(index, threads, batch, telem);
        // flusher writes the final exposition on scope exit.
    }

    if (!trace_out.empty()) {
        std::ofstream os(trace_out, std::ios::trunc);
        if (!os)
            GASNUB_FATAL("serve: cannot write trace file '",
                         trace_out, "'");
        trace::Tracer::instance().exportChromeJson(os);
    }

    if (stats) {
        // Routed through the registry (satellite of the live
        // telemetry work): collect() refreshes the cache gauges from
        // the shard counters, so the same numbers are available to a
        // mid-run scrape and to this exit report.
        reg.collect();
        const auto gval = [&reg](const char *name) {
            const metrics::Metric *m = reg.find(name);
            GASNUB_ASSERT(m, "unregistered gauge ", name);
            return static_cast<unsigned long long>(
                static_cast<const metrics::Gauge *>(m)->value());
        };
        std::fprintf(
            stderr,
            "serve: cache hits=%llu misses=%llu evictions=%llu "
            "entries=%llu/%llu\n",
            gval("serve.cache.hits"), gval("serve.cache.misses"),
            gval("serve.cache.evictions"),
            gval("serve.cache.entries"),
            static_cast<unsigned long long>(
                index.cacheStats().capacity));
    }
    return rc;
}
