/**
 * @file
 * Shared telemetry-file plumbing for the serving tools (serve,
 * loadgen): format selection by extension, atomic write-then-rename
 * exports, and the periodic flusher thread that re-exports the
 * registry next to the worker threads.
 *
 * The atomic rename is the load-bearing part: a scraper (or the CI
 * smoke job) reading the file mid-flush must always see one complete
 * exposition, never a torn half-file, so every export goes to
 * "<path>.tmp" first and std::rename()s over the target.
 */

#ifndef GASNUB_TOOLS_METRICS_FLUSH_HH
#define GASNUB_TOOLS_METRICS_FLUSH_HH

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace gasnub::toolmetrics {

/** ".json" targets get the JSON exposition; everything else gets
 *  Prometheus text format. */
inline bool
jsonByExtension(const std::string &path)
{
    const auto dot = path.rfind('.');
    return dot != std::string::npos && path.substr(dot) == ".json";
}

/**
 * Export @p registry into @p path atomically (write "<path>.tmp",
 * rename over the target).  Fatal on I/O errors — a tool asked to
 * publish metrics it cannot write is misconfigured, not degraded.
 */
inline void
writeMetricsFile(metrics::Registry &registry, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            GASNUB_FATAL("cannot open metrics file '", tmp,
                         "' for writing");
        if (jsonByExtension(path))
            registry.exportJson(os, metrics::monotonicSeconds());
        else
            registry.exportPrometheus(os,
                                      metrics::monotonicSeconds());
        os.flush();
        if (!os)
            GASNUB_FATAL("short write on metrics file '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        GASNUB_FATAL("cannot rename '", tmp, "' over '", path, "'");
}

/**
 * A background thread re-exporting @p registry into @p path every
 * @p interval_ms until destruction; the destructor joins the thread
 * and writes one final export so the file always ends at the run's
 * true totals.  An empty path makes the whole object a no-op.
 */
class MetricsFlusher
{
  public:
    MetricsFlusher(metrics::Registry &registry, std::string path,
                   int interval_ms)
        : _registry(registry), _path(std::move(path))
    {
        if (_path.empty())
            return;
        // Flush once up front so scrapers find the file immediately.
        writeMetricsFile(_registry, _path);
        _thread = std::thread([this, interval_ms] {
            std::unique_lock<std::mutex> lock(_mutex);
            for (;;) {
                _cv.wait_for(lock,
                             std::chrono::milliseconds(interval_ms));
                if (_stop)
                    return;
                writeMetricsFile(_registry, _path);
            }
        });
    }

    ~MetricsFlusher()
    {
        if (!_thread.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _stop = true;
        }
        _cv.notify_all();
        _thread.join();
        writeMetricsFile(_registry, _path);
    }

    MetricsFlusher(const MetricsFlusher &) = delete;
    MetricsFlusher &operator=(const MetricsFlusher &) = delete;

  private:
    metrics::Registry &_registry;
    std::string _path;
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _stop = false;
    std::thread _thread;
};

} // namespace gasnub::toolmetrics

#endif // GASNUB_TOOLS_METRICS_FLUSH_HH
