/**
 * @file
 * Benchmark-protocol runner: how fast is the simulator itself?
 *
 *   bench [--out FILE] [--pr N] [--repeats N] [--smoke] [--jobs N]
 *         [--scenario NAME] [--perf-sim PATH] [--list]
 *   bench --compare OLD.json NEW.json [--threshold PCT]
 *
 * Times the pinned scenario registry (bench::perfScenarios — three
 * machines' local/remote sweeps plus the gas 2D-FFT, all at fixed
 * grids) and writes a schema-versioned BENCH_<pr>.json: host
 * fingerprint, repeats, median/min seconds and points/sec per
 * scenario.  One such file is checked in per performance-relevant PR,
 * making the simulator's own speed a tracked, reviewable trajectory
 * (ROADMAP item 2; protocol in docs/perf_tracking.md).
 *
 * --compare reads two protocol files, prints one delta row per
 * scenario in the union of both files, and fails (exit 1) when any
 * common scenario's points/sec dropped by more than the threshold
 * (default 10%).  A scenario present in only one file is a schema
 * mismatch — the two runs did not measure the same protocol — and
 * exits 2, like a mismatched schema string.  CI runs a smoke pass
 * against the checked-in baseline.
 *
 * --perf-sim runs a google-benchmark binary (bench/perf_simulator)
 * with --benchmark_format=json and embeds its output under
 * "microbench" for archival; the per-kernel numbers complement the
 * end-to-end scenarios but are not compared.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/utsname.h>

#include "bench_util.hh"
#include "json_util.hh"

using namespace gasnub;
using tooljson::JsonParser;
using tooljson::JsonValue;

namespace {

constexpr const char *kSchema = "gasnub-bench-1";

void
printUsage(std::ostream &os)
{
    os << "usage: bench [--out FILE] [--pr N] [--repeats N] "
           "[--smoke] [--jobs N]\n"
           "             [--scenario NAME] [--perf-sim PATH] "
           "[--list]\n"
           "       bench --compare OLD.json NEW.json "
           "[--threshold PCT]\n"
           "  --out FILE       write BENCH json (default: stdout)\n"
           "  --pr N           PR number recorded in the file\n"
           "  --repeats N      timed repetitions per scenario "
           "(default 5; smoke 2)\n"
           "  --smoke          fewer repeats, same pinned grids "
           "(comparable, noisier)\n"
           "  --jobs N         sweep worker threads (default 1 = "
           "serial, least noise)\n"
           "  --scenario NAME  run only the named scenario (repeat "
           "to run several)\n"
           "  --perf-sim PATH  also run a google-benchmark binary "
           "and embed its json\n"
           "  --list           print scenario names and exit\n"
           "  --compare        regression gate: exit 1 when NEW is "
           "slower than OLD by\n"
           "                   more than --threshold percent "
           "(default 10) on any scenario;\n"
           "                   differing scenario sets are a schema "
           "mismatch (exit 2)\n"
           "  --allow-new      with --compare: scenarios only in NEW "
           "are accepted (a PR\n"
           "                   growing the protocol), not a schema "
           "mismatch; scenarios\n"
           "                   only in OLD still exit 2\n"
           "exit status: 0 ok, 1 regression, 2 bad usage/input/"
           "schema\n";
}

[[noreturn]] void
usage()
{
    printUsage(std::cerr);
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &msg)
{
    std::cerr << "bench: " << msg << "\n";
    std::exit(2);
}

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Measured result of one scenario. */
struct Timing
{
    std::string name;
    std::uint64_t points = 0;
    std::uint64_t accesses = 0;
    double secMedian = 0;
    double secMin = 0;
    double pointsPerSec = 0;
    double accessesPerSec = 0;
};

Timing
timeScenario(const bench::PerfScenario &s, int repeats, int jobs)
{
    Timing t;
    t.name = s.name;
    std::vector<double> secs;
    std::uint64_t bestP99 = ~std::uint64_t(0);
    for (int r = 0; r < repeats; ++r) {
        const auto start = std::chrono::steady_clock::now();
        const bench::PerfRunCounts counts =
            bench::runPerfScenario(s, jobs);
        secs.push_back(
            seconds(start, std::chrono::steady_clock::now()));
        t.points = counts.points;
        t.accesses = counts.accesses;
        bestP99 = std::min(bestP99, counts.sloP99Ns);
    }
    std::sort(secs.begin(), secs.end());
    t.secMin = secs.front();
    t.secMedian = secs[secs.size() / 2];
    // Rates from the fastest repeat: the minimum is the least-noise
    // estimate of the work's true cost on this host.
    if (s.serveSlo) {
        // SLO scenarios record inverse tail latency (1e9 / p99_ns)
        // as the rate, so a p99 increase reads as a rate drop and
        // the --compare gate flags it like any other regression.
        t.pointsPerSec =
            bestP99 > 0 ? 1e9 / static_cast<double>(bestP99) : 0.0;
        t.accessesPerSec = t.pointsPerSec;
    } else {
        t.pointsPerSec = static_cast<double>(t.points) / t.secMin;
        t.accessesPerSec = static_cast<double>(t.accesses) / t.secMin;
    }
    return t;
}

/** Run @p path --benchmark_format=json; empty string on failure. */
std::string
runPerfSim(const std::string &path)
{
    const std::string cmd = path + " --benchmark_format=json 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe) {
        std::cerr << "bench: cannot run " << path << "\n";
        return "";
    }
    std::string out;
    std::array<char, 4096> buf;
    std::size_t n;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        out.append(buf.data(), n);
    if (pclose(pipe) != 0) {
        std::cerr << "bench: " << path << " failed; skipping "
                  << "microbench section\n";
        return "";
    }
    // Validate before embedding — a truncated run must not corrupt
    // the protocol file.  (Parse errors exit; acceptable for a tool.)
    JsonParser parser(out, "bench: " + path);
    parser.parse();
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
writeBench(std::ostream &os, int pr, int repeats, int jobs, bool smoke,
           const std::vector<Timing> &timings,
           const std::string &microbench)
{
    utsname uts{};
    uname(&uts);
    os << "{\n  \"schema\": \"" << kSchema << "\",\n";
    os << "  \"pr\": " << pr << ",\n";
    os << "  \"host\": {\"system\": \"" << jsonEscape(uts.sysname)
       << "\", \"release\": \"" << jsonEscape(uts.release)
       << "\", \"machine\": \"" << jsonEscape(uts.machine)
       << "\", \"cpus\": " << std::thread::hardware_concurrency()
#ifdef NDEBUG
       << ", \"build\": \"Release\"},\n";
#else
       << ", \"build\": \"Debug\"},\n";
#endif
    os << "  \"repeats\": " << repeats << ",\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    os << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const Timing &t = timings[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"points\": %llu, "
                      "\"accesses\": %llu, \"secMedian\": %.6g, "
                      "\"secMin\": %.6g, \"pointsPerSec\": %.6g, "
                      "\"accessesPerSec\": %.6g}",
                      t.name.c_str(),
                      static_cast<unsigned long long>(t.points),
                      static_cast<unsigned long long>(t.accesses),
                      t.secMedian, t.secMin, t.pointsPerSec,
                      t.accessesPerSec);
        os << buf << (i + 1 < timings.size() ? ",\n" : "\n");
    }
    os << "  ]";
    if (!microbench.empty())
        os << ",\n  \"microbench\": " << microbench;
    os << "\n}\n";
}

// ------------------------------------------------------------------
// --compare

JsonValue
loadBench(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fail("cannot open " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    JsonParser parser(text, "bench: " + path);
    JsonValue root = parser.parse();
    const JsonValue *schema = root.find("schema");
    if (!schema || schema->string != kSchema)
        fail(path + ": schema mismatch (want " + kSchema + ", got " +
             (schema ? schema->string : "none") + ")");
    return root;
}

int
compareBench(const std::string &oldPath, const std::string &newPath,
             double thresholdPct, bool allowNew)
{
    const JsonValue oldRoot = loadBench(oldPath);
    const JsonValue newRoot = loadBench(newPath);
    const JsonValue *oldScen = oldRoot.find("scenarios");
    const JsonValue *newScen = newRoot.find("scenarios");
    if (!oldScen || !newScen)
        fail("missing scenarios array");

    auto jobsOf = [](const JsonValue &root) {
        const JsonValue *j = root.find("jobs");
        return j ? j->number : 1.0;
    };
    if (jobsOf(oldRoot) != jobsOf(newRoot))
        std::cerr << "bench: note: comparing runs with different "
                     "--jobs; rates are not strictly comparable\n";

    // Per-file name -> pointsPerSec, in file order; the table walks
    // the union so a scenario present in only one file still gets a
    // row before the exit-2 verdict.
    auto rates = [](const JsonValue &scen, const std::string &path) {
        std::vector<std::pair<std::string, double>> out;
        for (const JsonValue &s : scen.array) {
            const JsonValue *name = s.find("name");
            const JsonValue *pps = s.find("pointsPerSec");
            if (!name || !pps)
                fail(path + ": scenario missing name/pointsPerSec");
            out.emplace_back(name->string, pps->number);
        }
        return out;
    };
    const auto oldRates = rates(*oldScen, oldPath);
    const auto newRates = rates(*newScen, newPath);
    auto lookup = [](const std::vector<std::pair<std::string, double>>
                         &v,
                     const std::string &name) -> const double * {
        for (const auto &[n, r] : v)
            if (n == name)
                return &r;
        return nullptr;
    };

    std::printf("%-22s %12s %12s %8s  %s\n", "scenario", "old pts/s",
                "new pts/s", "delta", "verdict");
    bool regression = false;
    bool mismatch = false;
    for (const auto &[name, oldPps] : oldRates) {
        const double *newPps = lookup(newRates, name);
        if (!newPps) {
            std::printf("%-22s %12.0f %12s %8s  ONLY-IN-OLD\n",
                        name.c_str(), oldPps, "-", "-");
            mismatch = true;
            continue;
        }
        const double delta = 100.0 * (*newPps - oldPps) / oldPps;
        const bool bad = delta < -thresholdPct;
        std::printf("%-22s %12.0f %12.0f %+7.1f%%  %s\n", name.c_str(),
                    oldPps, *newPps, delta, bad ? "REGRESSION" : "ok");
        if (bad)
            regression = true;
    }
    for (const auto &[name, newPps] : newRates) {
        if (lookup(oldRates, name))
            continue;
        std::printf("%-22s %12s %12.0f %8s  %s\n", name.c_str(), "-",
                    newPps, "-", allowNew ? "NEW" : "ONLY-IN-NEW");
        if (!allowNew)
            mismatch = true;
    }
    if (mismatch) {
        std::fprintf(stderr,
                     "bench: scenario sets differ; the files do not "
                     "measure the same protocol\n");
        return 2;
    }
    if (regression) {
        std::fprintf(stderr,
                     "bench: regression beyond %.1f%% threshold\n",
                     thresholdPct);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out;
    int pr = 0;
    int repeats = 0;
    bool smoke = false;
    int jobs = 1;
    std::vector<std::string> only;
    std::string perfSim;
    bool list = false;
    bool compare = false;
    bool allowNew = false;
    std::vector<std::string> comparePaths;
    double threshold = 10.0;

    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc)
                fail("option " + opt + " needs a value");
            return argv[++i];
        };
        if (opt == "--help" || opt == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (opt == "--out")
            out = val();
        else if (opt == "--pr")
            pr = std::atoi(val().c_str());
        else if (opt == "--repeats")
            repeats = std::atoi(val().c_str());
        else if (opt == "--smoke")
            smoke = true;
        else if (opt == "--jobs")
            jobs = std::atoi(val().c_str());
        else if (opt == "--scenario")
            only.push_back(val());
        else if (opt == "--perf-sim")
            perfSim = val();
        else if (opt == "--list")
            list = true;
        else if (opt == "--compare")
            compare = true;
        else if (opt == "--allow-new")
            allowNew = true;
        else if (opt == "--threshold")
            threshold = std::atof(val().c_str());
        else if (opt.rfind("--", 0) == 0)
            usage();
        else
            comparePaths.push_back(opt);
    }

    if (compare) {
        if (comparePaths.size() != 2)
            usage();
        return compareBench(comparePaths[0], comparePaths[1],
                            threshold, allowNew);
    }
    if (!comparePaths.empty() || allowNew)
        usage();

    const std::vector<bench::PerfScenario> all =
        bench::perfScenarios();
    if (list) {
        for (const bench::PerfScenario &s : all)
            std::printf("%s\n", s.name.c_str());
        return 0;
    }

    std::vector<bench::PerfScenario> scenarios;
    if (only.empty()) {
        scenarios = all;
    } else {
        for (const std::string &name : only) {
            const auto it = std::find_if(
                all.begin(), all.end(),
                [&](const bench::PerfScenario &s) {
                    return s.name == name;
                });
            if (it == all.end())
                fail("unknown scenario '" + name +
                     "' (see --list)");
            scenarios.push_back(*it);
        }
    }

    if (repeats <= 0)
        repeats = smoke ? 2 : 5;

    std::vector<Timing> timings;
    for (const bench::PerfScenario &s : scenarios) {
        std::fprintf(stderr, "bench: %s (%d repeats)...\n",
                     s.name.c_str(), repeats);
        timings.push_back(timeScenario(s, repeats, jobs));
        const Timing &t = timings.back();
        std::fprintf(stderr,
                     "bench: %s: %.4g s min, %.6g points/s\n",
                     t.name.c_str(), t.secMin, t.pointsPerSec);
    }

    std::string microbench;
    if (!perfSim.empty())
        microbench = runPerfSim(perfSim);

    if (out.empty()) {
        writeBench(std::cout, pr, repeats, jobs, smoke, timings,
                   microbench);
    } else {
        std::ofstream os(out);
        if (!os)
            fail("cannot open " + out);
        writeBench(os, pr, repeats, jobs, smoke, timings, microbench);
        std::fprintf(stderr, "bench: wrote %s\n", out.c_str());
    }
    return 0;
}
