// Scratch calibration harness: prints local load-bandwidth plateaus and
// copy bandwidths for the three machines next to the paper's targets.
#include <cstdio>
#include "kernels/kernels.hh"
#include "kernels/remote_kernels.hh"
#include "machine/configs.hh"
#include "sim/units.hh"

using namespace gasnub;

static void surface(const char* label, mem::HierarchyConfig cfg,
                    std::initializer_list<std::uint64_t> wss,
                    std::initializer_list<std::uint64_t> strides) {
    mem::MemoryHierarchy h(cfg);
    std::printf("== %s load-sum ==\n%10s", label, "ws\\stride");
    for (auto s : strides) std::printf("%8llu", (unsigned long long)s);
    std::printf("\n");
    for (auto ws : wss) {
        std::printf("%10s", formatSize(ws).c_str());
        for (auto s : strides) {
            kernels::KernelParams p; p.wsBytes = ws; p.stride = s;
            auto r = kernels::loadSum(h, p);
            std::printf("%8.0f", r.mbs);
        }
        std::printf("\n");
    }
}

static void copies(const char* label, mem::HierarchyConfig cfg,
                   std::initializer_list<std::uint64_t> strides) {
    mem::MemoryHierarchy h(cfg);
    std::printf("== %s copy (65M ws) ==\n%10s", label, "variant");
    for (auto s : strides) std::printf("%8llu", (unsigned long long)s);
    std::printf("\n%10s", "sload");
    for (auto s : strides) {
        kernels::KernelParams p; p.wsBytes = 65 * 1_MiB; p.stride = s;
        auto r = kernels::copy(h, p, kernels::CopyVariant::StridedLoads,
                               p.wsBytes);
        std::printf("%8.0f", r.mbs);
    }
    std::printf("\n%10s", "sstore");
    for (auto s : strides) {
        kernels::KernelParams p; p.wsBytes = 65 * 1_MiB; p.stride = s;
        auto r = kernels::copy(h, p, kernels::CopyVariant::StridedStores,
                               p.wsBytes);
        std::printf("%8.0f", r.mbs);
    }
    std::printf("\n");
}

static void surfaceMachine(const char* label, machine::SystemKind kind,
                           std::initializer_list<std::uint64_t> wss,
                           std::initializer_list<std::uint64_t> strides) {
    machine::Machine m(kind, 4);
    std::printf("== %s (machine path) ==\n%10s", label, "ws\\stride");
    for (auto s : strides) std::printf("%8llu", (unsigned long long)s);
    std::printf("\n");
    for (auto ws : wss) {
        std::printf("%10s", formatSize(ws).c_str());
        for (auto s : strides) {
            kernels::KernelParams p; p.wsBytes = ws; p.stride = s;
            auto r = kernels::loadSumOn(m, 0, p);
            std::printf("%8.0f", r.mbs);
        }
        std::printf("\n");
    }
}

int main() {
    using machine::dec8400Node; using machine::crayT3dNode;
    using machine::crayT3eNode;
    surface("DEC8400", dec8400Node(), {4_KiB, 64_KiB, 1_MiB, 16_MiB, 64_MiB},
            {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 1100 | L2 700 | L3 600->120 | DRAM 150->28\n\n");
    surface("T3D", crayT3dNode(), {4_KiB, 64_KiB, 16_MiB},
            {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 ~600 | DRAM 195->43\n\n");
    surface("T3E", crayT3eNode(), {4_KiB, 64_KiB, 1_MiB, 16_MiB},
            {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 1100 | L2 700 | DRAM 430->42\n\n");
    copies("DEC8400", dec8400Node(), {1,2,4,8,16,32,64});
    std::printf("targets: contig 57, strided ~18 (both variants)\n\n");
    copies("T3D", crayT3dNode(), {1,2,4,8,16,32,64});
    std::printf("targets: contig 100, sload ->43, sstore ->70\n\n");
    copies("T3E", crayT3eNode(), {1,2,4,8,16,32,64});
    std::printf("targets: contig 200, strided ~20-40 (8400-like)\n\n");
    surfaceMachine("DEC8400", machine::SystemKind::Dec8400,
                   {4_KiB, 64_KiB, 1_MiB, 16_MiB},
                   {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 1100 | L2 700 | L3 600->120 | DRAM 150->28\n");
    return 0;
}
