// Scratch calibration harness: prints local load-bandwidth plateaus and
// copy bandwidths for the three machines next to the paper's targets.
// Accepts --jobs N (default: GASNUB_JOBS, then hardware concurrency);
// grid points run on per-worker replicas and print in grid order, so
// the output is identical for any worker count.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>
#include "core/sweep_runner.hh"
#include "kernels/kernels.hh"
#include "kernels/remote_kernels.hh"
#include "machine/configs.hh"
#include "sim/pool.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

using namespace gasnub;

static int g_jobs = 0;

// Evaluate fn(hierarchy, j) for j in [0, n) on per-worker hierarchy
// replicas (bare node memory systems, no interconnect); results land
// in per-point slots so completion order never shows.
static std::vector<double>
sweepPoints(const mem::HierarchyConfig& cfg, std::size_t n,
            const std::function<double(mem::MemoryHierarchy&,
                                       std::size_t)>& fn) {
    sim::ThreadPool pool(g_jobs);
    struct Worker {
        trace::Tracer tracer;
        std::unique_ptr<mem::MemoryHierarchy> h;
    };
    std::vector<std::unique_ptr<Worker>> workers;
    for (int i = 0; i < pool.workers(); ++i)
        workers.push_back(std::make_unique<Worker>());
    std::vector<double> out(n);
    pool.parallelFor(n, [&](int w, std::size_t j) {
        Worker& ctx = *workers[w];
        trace::ScopedThreadTracer scoped(ctx.tracer, 0);
        if (!ctx.h)
            ctx.h = std::make_unique<mem::MemoryHierarchy>(cfg);
        out[j] = fn(*ctx.h, j);
    });
    return out;
}

static void surface(const char* label, const mem::HierarchyConfig& cfg,
                    const std::vector<std::uint64_t>& wss,
                    const std::vector<std::uint64_t>& strides) {
    auto vals = sweepPoints(cfg, wss.size() * strides.size(),
        [&](mem::MemoryHierarchy& h, std::size_t j) {
            kernels::KernelParams p;
            p.wsBytes = wss[j / strides.size()];
            p.stride = strides[j % strides.size()];
            return kernels::loadSum(h, p).mbs;
        });
    std::printf("== %s load-sum ==\n%10s", label, "ws\\stride");
    for (auto s : strides) std::printf("%8llu", (unsigned long long)s);
    std::printf("\n");
    for (std::size_t r = 0; r < wss.size(); ++r) {
        std::printf("%10s", formatSize(wss[r]).c_str());
        for (std::size_t c = 0; c < strides.size(); ++c)
            std::printf("%8.0f", vals[r * strides.size() + c]);
        std::printf("\n");
    }
}

static void copies(const char* label, const mem::HierarchyConfig& cfg,
                   const std::vector<std::uint64_t>& strides) {
    // Row 0: strided loads; row 1: strided stores.
    auto vals = sweepPoints(cfg, 2 * strides.size(),
        [&](mem::MemoryHierarchy& h, std::size_t j) {
            kernels::KernelParams p;
            p.wsBytes = 65 * 1_MiB;
            p.stride = strides[j % strides.size()];
            const auto variant = j < strides.size()
                ? kernels::CopyVariant::StridedLoads
                : kernels::CopyVariant::StridedStores;
            return kernels::copy(h, p, variant, p.wsBytes).mbs;
        });
    std::printf("== %s copy (65M ws) ==\n%10s", label, "variant");
    for (auto s : strides) std::printf("%8llu", (unsigned long long)s);
    std::printf("\n%10s", "sload");
    for (std::size_t c = 0; c < strides.size(); ++c)
        std::printf("%8.0f", vals[c]);
    std::printf("\n%10s", "sstore");
    for (std::size_t c = 0; c < strides.size(); ++c)
        std::printf("%8.0f", vals[strides.size() + c]);
    std::printf("\n");
}

static void surfaceMachine(const char* label, machine::SystemKind kind,
                           const std::vector<std::uint64_t>& wss,
                           const std::vector<std::uint64_t>& strides) {
    machine::SystemConfig sys;
    sys.kind = kind;
    core::SweepRunner runner(sys, g_jobs);
    core::CharacterizeConfig cfg;
    cfg.workingSets = wss;
    cfg.strides = strides;
    core::Surface s = runner.localLoads(0, cfg);
    std::printf("== %s (machine path) ==\n%10s", label, "ws\\stride");
    for (auto st : strides)
        std::printf("%8llu", (unsigned long long)st);
    std::printf("\n");
    for (auto ws : wss) {
        std::printf("%10s", formatSize(ws).c_str());
        for (auto st : strides) std::printf("%8.0f", s.at(ws, st));
        std::printf("\n");
    }
}

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            g_jobs = std::atoi(argv[++i]);
        } else if (!std::strncmp(argv[i], "--jobs=", 7)) {
            g_jobs = std::atoi(argv[i] + 7);
        } else {
            std::fprintf(stderr, "usage: calibrate_local [--jobs N]\n");
            return 2;
        }
    }
    g_jobs = sim::defaultJobs(g_jobs);

    using machine::dec8400Node; using machine::crayT3dNode;
    using machine::crayT3eNode;
    surface("DEC8400", dec8400Node(), {4_KiB, 64_KiB, 1_MiB, 16_MiB, 64_MiB},
            {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 1100 | L2 700 | L3 600->120 | DRAM 150->28\n\n");
    surface("T3D", crayT3dNode(), {4_KiB, 64_KiB, 16_MiB},
            {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 ~600 | DRAM 195->43\n\n");
    surface("T3E", crayT3eNode(), {4_KiB, 64_KiB, 1_MiB, 16_MiB},
            {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 1100 | L2 700 | DRAM 430->42\n\n");
    copies("DEC8400", dec8400Node(), {1,2,4,8,16,32,64});
    std::printf("targets: contig 57, strided ~18 (both variants)\n\n");
    copies("T3D", crayT3dNode(), {1,2,4,8,16,32,64});
    std::printf("targets: contig 100, sload ->43, sstore ->70\n\n");
    copies("T3E", crayT3eNode(), {1,2,4,8,16,32,64});
    std::printf("targets: contig 200, strided ~20-40 (8400-like)\n\n");
    surfaceMachine("DEC8400", machine::SystemKind::Dec8400,
                   {4_KiB, 64_KiB, 1_MiB, 16_MiB},
                   {1,2,4,8,16,32,64,128});
    std::printf("targets: L1 1100 | L2 700 | L3 600->120 | DRAM 150->28\n");
    return 0;
}
