/**
 * @file
 * Bottleneck report analyzer: turn the attribution outputs of the
 * other tools into a ranked "where did the time go" report.
 *
 *   report [--stats-json FILE] [--format text|json|md] [SURFACE...]
 *
 * Two complementary inputs, either or both:
 *
 *  - SURFACE files saved by `characterize --attribution --out` (format
 *    version 2).  Every grid point carries an exact decomposition of
 *    its elapsed ticks into per-resource shares; the report aggregates
 *    the points into (working set x stride) regions and ranks each
 *    region's resources by share.
 *
 *  - A --stats-json tree from `characterize`, `chaos` or any stats
 *    Group::dumpJson.  The report extracts every timeAccount ledger
 *    (cumulative busy/stall ticks per resource) and the trace.dropped
 *    counter, and ranks resources by busy time.
 *
 * The exact-sum invariant is re-validated on every surface point: if
 * any point's shares do not sum to its elapsed ticks (100% +- epsilon
 * after normalization), the report fails with exit code 1 — CI runs
 * this tool to enforce the invariant end to end.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/surface_io.hh"
#include "sim/units.hh"

#include "json_util.hh"

using namespace gasnub;
using tooljson::JsonParser;
using tooljson::JsonValue;

namespace {

void
usage()
{
    std::cerr
        << "usage: report [--stats-json FILE] [--format text|json|md] "
           "[SURFACE...]\n"
           "  SURFACE           surface file saved by 'characterize "
           "--attribution --out'\n"
           "  --stats-json FILE stats tree from --stats-json "
           "(characterize or chaos)\n"
           "  --format FMT      text (default), json, or md\n"
           "exit status: 0 ok, 1 attribution invariant violated, 2 "
           "bad usage/input\n";
    std::exit(2);
}

// ------------------------------------------------------------------
// Report model

/** What a resource class name means, for humans. */
const char *
friendlyName(const std::string &res)
{
    static const std::map<std::string, const char *> names = {
        {"sw.overhead", "software overhead / unhidden latency"},
        {"cpu.issue", "CPU issue slots"},
        {"cache.port", "cache port occupancy"},
        {"stream", "stream-buffer fill"},
        {"wbq", "write-back queue drain"},
        {"dram.bank", "DRAM bank busy (page misses)"},
        {"dram.chan", "DRAM channel transfer"},
        {"bus.addr", "bus arbitration (address phase)"},
        {"bus.dram.bank", "shared-memory DRAM bank busy"},
        {"bus.dram.chan", "shared-memory DRAM channel"},
        {"noc.link", "link serialization"},
        {"noc.nic", "NIC processing"},
        {"engine", "remote-engine request issue"},
        {"gas.retry", "retry backoff"},
    };
    const auto it = names.find(res);
    return it == names.end() ? "" : it->second;
}

/** One ranked slice of a region's (or ledger's) time. */
struct Slice
{
    std::string resource;
    double share = 0; ///< percent of the region's elapsed time
    std::uint64_t ticks = 0;
};

/** One aggregated region of a surface. */
struct Region
{
    std::string wsBand;
    std::string strideBand;
    std::size_t points = 0;
    std::uint64_t elapsed = 0;
    std::vector<Slice> slices; ///< ranked, all resources > 0
};

/** A reported unit: one surface or one timeAccount ledger. */
struct Report
{
    std::string title;
    std::string source; ///< "surface" or "stats"
    std::vector<Region> regions;
};

bool violation = false;

std::string
wsBandOf(std::uint64_t ws)
{
    if (ws <= 64_KiB)
        return "ws<=64K";
    if (ws < 1_MiB)
        return "64K<ws<1M";
    return "ws>=1M";
}

std::string
strideBandOf(std::uint64_t st)
{
    if (st == 1)
        return "stride 1";
    if (st <= 8)
        return "stride 2-8";
    if (st <= 32)
        return "stride 9-32";
    return "stride >=33";
}

std::vector<Slice>
rankSlices(const std::vector<std::string> &names,
           const std::vector<std::uint64_t> &ticks,
           std::uint64_t total)
{
    std::vector<Slice> out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (ticks[i] == 0)
            continue;
        Slice s;
        s.resource = names[i];
        s.ticks = ticks[i];
        s.share = total == 0
                      ? 0
                      : 100.0 * static_cast<double>(ticks[i]) /
                            static_cast<double>(total);
        out.push_back(s);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Slice &a, const Slice &b) {
                         return a.ticks > b.ticks;
                     });
    return out;
}

Report
reportSurface(const std::string &path)
{
    const core::Surface s = core::loadSurfaceFile(path);
    Report rep;
    rep.title = s.name();
    rep.source = "surface";
    if (!s.hasAttribution()) {
        std::cerr << "report: " << path
                  << ": surface has no attribution section (re-run "
                     "characterize with --attribution)\n";
        std::exit(2);
    }

    const std::vector<std::string> &res = s.attrResources();
    struct Bucket
    {
        std::size_t points = 0;
        std::uint64_t elapsed = 0;
        std::vector<std::uint64_t> ticks;
    };
    // Keyed by (ws band, stride band) in first-seen order, which is
    // grid order — deterministic.
    std::vector<std::pair<std::pair<std::string, std::string>, Bucket>>
        buckets;
    auto bucketOf = [&](const std::string &wb, const std::string &sb)
        -> Bucket & {
        for (auto &b : buckets)
            if (b.first.first == wb && b.first.second == sb)
                return b.second;
        buckets.push_back({{wb, sb}, Bucket{}});
        buckets.back().second.ticks.assign(res.size(), 0);
        return buckets.back().second;
    };

    for (std::uint64_t w : s.workingSets()) {
        for (std::uint64_t st : s.strides()) {
            const Tick elapsed = s.elapsedAt(w, st);
            const std::vector<Tick> &shares = s.attributionAt(w, st);
            Tick sum = 0;
            for (Tick v : shares)
                sum += v;
            if (sum != elapsed) {
                // loadSurface validates this too; double-checking here
                // keeps the exit-1 contract even if the loader's
                // validation ever regresses.
                std::cerr << "report: " << path << ": point (ws " << w
                          << ", stride " << st << ") shares sum to "
                          << sum << " of " << elapsed << " ticks\n";
                violation = true;
            }
            Bucket &b = bucketOf(wsBandOf(w), strideBandOf(st));
            ++b.points;
            b.elapsed += elapsed;
            for (std::size_t i = 0; i < res.size(); ++i)
                b.ticks[i] += shares[i];
        }
    }

    for (const auto &kv : buckets) {
        Region r;
        r.wsBand = kv.first.first;
        r.strideBand = kv.first.second;
        r.points = kv.second.points;
        r.elapsed = kv.second.elapsed;
        r.slices = rankSlices(res, kv.second.ticks, kv.second.elapsed);
        double pct = 0;
        for (const Slice &sl : r.slices)
            pct += sl.share;
        if (r.elapsed > 0 && std::fabs(pct - 100.0) > 0.01) {
            std::cerr << "report: " << path << ": region " << r.wsBand
                      << " x " << r.strideBand << " shares sum to "
                      << pct << "%\n";
            violation = true;
        }
        rep.regions.push_back(std::move(r));
    }
    return rep;
}

/** Walk a stats tree; collect timeAccount ledgers as reports. */
void
collectLedgers(const JsonValue &group, const std::string &path,
               std::vector<Report> &out)
{
    const JsonValue *name = group.find("name");
    const std::string here =
        path.empty()
            ? (name ? name->string : "")
            : path + "/" + (name ? name->string : "");
    if (const JsonValue *stats = group.find("stats")) {
        for (const JsonValue &st : stats->array) {
            const JsonValue *type = st.find("type");
            if (!type || type->string != "timeAccount")
                continue;
            const JsonValue *sn = st.find("name");
            const JsonValue *resources = st.find("resources");
            if (!resources)
                continue;
            std::vector<std::string> names;
            std::vector<std::uint64_t> busy;
            for (const JsonValue &r : resources->array) {
                const JsonValue *rn = r.find("name");
                const JsonValue *b = r.find("busyTicks");
                names.push_back(rn ? rn->string : "?");
                busy.push_back(static_cast<std::uint64_t>(
                    b ? b->number : 0));
            }
            std::uint64_t total = 0;
            for (std::uint64_t b : busy)
                total += b;
            Report rep;
            rep.title = sn ? sn->string : here;
            rep.source = "stats";
            Region r;
            r.wsBand = "cumulative";
            r.strideBand = "all points";
            r.points = 1;
            r.elapsed = total;
            // Shares here are "percent of all busy ticks", not of an
            // elapsed window: the cumulative ledger spans many
            // overlapping points, so there is no 100%-of-elapsed
            // invariant to enforce.
            r.slices = rankSlices(names, busy, total);
            rep.regions.push_back(std::move(r));
            out.push_back(std::move(rep));
        }
    }
    if (const JsonValue *groups = group.find("groups"))
        for (const JsonValue &g : groups->array)
            collectLedgers(g, here, out);
}

/**
 * Throughput telemetry from a --profile run's stats tree (the "perf"
 * group core::SweepTelemetry attaches; see docs/perf_tracking.md).
 */
struct Throughput
{
    bool present = false;
    double points = 0;
    double accesses = 0;
    double wallSeconds = 0;
    double pointsPerSec = 0;
    double accessesPerSec = 0;
    double workerUtilization = -1; ///< < 0 = not reported
};

void
collectThroughput(const JsonValue &group, Throughput &out)
{
    const JsonValue *name = group.find("name");
    if (name && name->string == "perf") {
        const JsonValue *stats = group.find("stats");
        if (stats) {
            for (const JsonValue &st : stats->array) {
                const JsonValue *sn = st.find("name");
                const JsonValue *v = st.find("value");
                if (!sn || !v)
                    continue;
                if (sn->string == "points")
                    out.points = v->number;
                else if (sn->string == "accesses")
                    out.accesses = v->number;
                else if (sn->string == "wallSeconds")
                    out.wallSeconds = v->number;
                else if (sn->string == "pointsPerSec") {
                    out.pointsPerSec = v->number;
                    out.present = true;
                } else if (sn->string == "accessesPerSec")
                    out.accessesPerSec = v->number;
                else if (sn->string == "workerUtilization")
                    out.workerUtilization = v->number;
            }
        }
    }
    if (const JsonValue *groups = group.find("groups"))
        for (const JsonValue &g : groups->array)
            collectThroughput(g, out);
}

std::string
throughputLine(const Throughput &t)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%.0f points/s, %.3g accesses/s (%.0f points in "
                  "%.4g s)",
                  t.pointsPerSec, t.accessesPerSec, t.points,
                  t.wallSeconds);
    std::string line = buf;
    if (t.workerUtilization >= 0) {
        std::snprintf(buf, sizeof(buf),
                      ", worker utilization %.0f%%",
                      100.0 * t.workerUtilization);
        line += buf;
    }
    return line;
}

// ------------------------------------------------------------------
// Formatting

void
printText(const std::vector<Report> &reports, const Throughput &thr,
          std::ostream &os)
{
    if (thr.present)
        os << "throughput: " << throughputLine(thr) << "\n\n";
    for (const Report &rep : reports) {
        os << "== " << rep.title << " (" << rep.source << ") ==\n";
        for (const Region &r : rep.regions) {
            os << "  " << r.wsBand << " x " << r.strideBand << " ("
               << r.points << " point" << (r.points == 1 ? "" : "s")
               << ", " << r.elapsed << " ticks)\n";
            if (r.slices.empty()) {
                os << "    (no attributed time)\n";
                continue;
            }
            for (const Slice &s : r.slices) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%6.2f%%", s.share);
                os << "    " << buf << "  " << s.resource;
                const char *fr = friendlyName(s.resource);
                if (*fr)
                    os << " — " << fr;
                os << "\n";
            }
        }
        os << "\n";
    }
}

void
printMd(const std::vector<Report> &reports, const Throughput &thr,
        std::ostream &os)
{
    if (thr.present)
        os << "**throughput:** " << throughputLine(thr) << "\n\n";
    for (const Report &rep : reports) {
        os << "## " << rep.title << " (" << rep.source << ")\n\n";
        os << "| region | points | share | resource | meaning |\n";
        os << "|---|---|---|---|---|\n";
        for (const Region &r : rep.regions) {
            const std::string region =
                r.wsBand + " × " + r.strideBand;
            for (const Slice &s : r.slices) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2f%%", s.share);
                os << "| " << region << " | " << r.points << " | "
                   << buf << " | `" << s.resource << "` | "
                   << friendlyName(s.resource) << " |\n";
            }
        }
        os << "\n";
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
printJson(const std::vector<Report> &reports, const Throughput &thr,
          std::ostream &os)
{
    os << "{";
    if (thr.present) {
        char buf[200];
        std::snprintf(
            buf, sizeof(buf),
            "\"throughput\":{\"points\":%.0f,\"accesses\":%.0f,"
            "\"wallSeconds\":%.9g,\"pointsPerSec\":%.9g,"
            "\"accessesPerSec\":%.9g",
            thr.points, thr.accesses, thr.wallSeconds,
            thr.pointsPerSec, thr.accessesPerSec);
        os << buf;
        if (thr.workerUtilization >= 0) {
            std::snprintf(buf, sizeof(buf),
                          ",\"workerUtilization\":%.9g",
                          thr.workerUtilization);
            os << buf;
        }
        os << "},";
    }
    os << "\"reports\":[";
    bool firstRep = true;
    for (const Report &rep : reports) {
        os << (firstRep ? "" : ",") << "{\"title\":\""
           << jsonEscape(rep.title) << "\",\"source\":\""
           << rep.source << "\",\"regions\":[";
        firstRep = false;
        bool firstReg = true;
        for (const Region &r : rep.regions) {
            os << (firstReg ? "" : ",") << "{\"workingSetBand\":\""
               << r.wsBand << "\",\"strideBand\":\"" << r.strideBand
               << "\",\"points\":" << r.points
               << ",\"elapsedTicks\":" << r.elapsed
               << ",\"resources\":[";
            firstReg = false;
            bool firstSl = true;
            for (const Slice &s : r.slices) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.4f", s.share);
                os << (firstSl ? "" : ",") << "{\"resource\":\""
                   << jsonEscape(s.resource) << "\",\"sharePercent\":"
                   << buf << ",\"ticks\":" << s.ticks << "}";
                firstSl = false;
            }
            os << "]}";
        }
        os << "]}";
    }
    os << "],\"invariantViolated\":" << (violation ? "true" : "false")
       << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string format = "text";
    std::string stats_json;
    std::vector<std::string> surfaces;
    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        if (opt == "--help" || opt == "-h")
            usage();
        else if (opt == "--format" || opt == "--stats-json") {
            if (i + 1 >= argc)
                usage();
            (opt == "--format" ? format : stats_json) = argv[++i];
        } else if (opt.rfind("--format=", 0) == 0) {
            format = opt.substr(9);
        } else if (opt.rfind("--stats-json=", 0) == 0) {
            stats_json = opt.substr(13);
        } else if (opt.rfind("--", 0) == 0) {
            usage();
        } else {
            surfaces.push_back(opt);
        }
    }
    if (format != "text" && format != "json" && format != "md")
        usage();
    if (stats_json.empty() && surfaces.empty())
        usage();

    std::vector<Report> reports;
    Throughput throughput;
    for (const std::string &path : surfaces)
        reports.push_back(reportSurface(path));
    if (!stats_json.empty()) {
        std::ifstream is(stats_json);
        if (!is) {
            std::cerr << "report: cannot open " << stats_json << "\n";
            return 2;
        }
        std::ostringstream ss;
        ss << is.rdbuf();
        const std::string text = ss.str();
        JsonParser parser(text, "report: " + stats_json);
        const JsonValue root = parser.parse();
        const std::size_t before = reports.size();
        collectLedgers(root, "", reports);
        collectThroughput(root, throughput);
        // A --profile tree carries throughput telemetry but not
        // necessarily a ledger; only a tree with neither is an error.
        if (reports.size() == before && !throughput.present) {
            std::cerr << "report: " << stats_json
                      << ": no timeAccount ledger found (re-run with "
                         "--attribution)\n";
            return 2;
        }
    }

    if (format == "json")
        printJson(reports, throughput, std::cout);
    else if (format == "md")
        printMd(reports, throughput, std::cout);
    else
        printText(reports, throughput, std::cout);

    if (violation) {
        std::cerr << "report: attribution invariant violated\n";
        return 1;
    }
    return 0;
}
