/**
 * @file
 * Minimal JSON reader shared by the analysis tools (report, bench).
 *
 * Covers exactly what this repo's writers emit — stats
 * Group::dumpJson trees, BENCH_<pr>.json protocol files, profiler
 * exports: objects, arrays, strings, numbers, bools and null, with
 * the stats writer's control-byte escapes.  Parse errors are fatal
 * (exit 2) with the caller-supplied context in the message.
 */

#ifndef GASNUB_TOOLS_JSON_UTIL_HH
#define GASNUB_TOOLS_JSON_UTIL_HH

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace gasnub::tooljson {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &kv : object)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    /** @param context Error prefix, e.g. "report: stats.json". */
    JsonParser(const std::string &text, const std::string &context)
        : _s(text), _ctx(context)
    {
    }

    JsonValue parse()
    {
        const JsonValue v = value();
        skipWs();
        if (_i != _s.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what)
    {
        std::cerr << _ctx << ": JSON error at byte " << _i << ": "
                  << what << "\n";
        std::exit(2);
    }

    void skipWs()
    {
        while (_i < _s.size() &&
               (_s[_i] == ' ' || _s[_i] == '\t' || _s[_i] == '\n' ||
                _s[_i] == '\r'))
            ++_i;
    }

    char peek()
    {
        skipWs();
        if (_i >= _s.size())
            fail("unexpected end of input");
        return _s[_i];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_i;
    }

    JsonValue value()
    {
        switch (peek()) {
          case '{': {
            // Recursive descent: bound the nesting so adversarial
            // input ("[[[[...") cannot blow the stack.
            if (++_depth > kMaxDepth)
                fail("nesting too deep");
            const JsonValue v = object();
            --_depth;
            return v;
          }
          case '[': {
            if (++_depth > kMaxDepth)
                fail("nesting too deep");
            const JsonValue v = array();
            --_depth;
            return v;
          }
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = string();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = _s[_i] == 't';
            _i += v.boolean ? 4 : 5;
            return v;
          }
          case 'n': {
            _i += 4;
            return JsonValue{};
          }
          default:
            return number();
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (_i < _s.size() && _s[_i] != '"') {
            char c = _s[_i++];
            if (c == '\\') {
                if (_i >= _s.size())
                    fail("truncated escape");
                const char e = _s[_i++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u': {
                    // The stats writer only escapes control bytes;
                    // decode the low byte and move on.  Checked by
                    // hand: std::stoi would throw (not fail) on
                    // non-hex digits.
                    if (_i + 4 > _s.size())
                        fail("truncated \\u escape");
                    int code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = _s[_i + k];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            fail("bad \\u escape");
                    }
                    c = static_cast<char>(code);
                    _i += 4;
                    break;
                  }
                  default: c = e; break;
                }
            }
            out.push_back(c);
        }
        expect('"');
        return out;
    }

    JsonValue number()
    {
        const std::size_t start = _i;
        while (_i < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_i])) ||
                _s[_i] == '-' || _s[_i] == '+' || _s[_i] == '.' ||
                _s[_i] == 'e' || _s[_i] == 'E'))
            ++_i;
        if (_i == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::strtod(_s.substr(start, _i - start).c_str(),
                               nullptr);
        return v;
    }

    JsonValue array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++_i;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            if (peek() == ',') {
                ++_i;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++_i;
            return v;
        }
        for (;;) {
            std::string key = string();
            expect(':');
            v.object.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++_i;
                continue;
            }
            expect('}');
            return v;
        }
    }

    /** Far deeper than any writer in this repo emits. */
    static constexpr int kMaxDepth = 128;

    const std::string &_s;
    std::string _ctx;
    std::size_t _i = 0;
    int _depth = 0;
};

} // namespace gasnub::tooljson

#endif // GASNUB_TOOLS_JSON_UTIL_HH
