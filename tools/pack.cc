/**
 * @file
 * Surface-pack converter: text surface directories -> gas-pack-1.
 *
 *   pack --machine NAME --surfaces DIR --out FILE.pack
 *   pack --describe FILE.pack
 *
 * The conversion is loadPlannerDir parity by construction: options
 * come from core::loadPlanOptionsDir (same stems, same sorted
 * registration order, same validation), and bandwidths are written as
 * raw doubles, so a PlannerIndex over the pack answers bit-for-bit
 * what a TransferPlanner over the directory would.  Corrupt input —
 * text or binary — dies with a file(/offset) diagnostic, never
 * partial output.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/planner_io.hh"
#include "serve/pack.hh"
#include "sim/logging.hh"

using namespace gasnub;

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: pack --machine NAME --surfaces DIR --out FILE\n"
          "       pack --describe FILE\n"
          "  --machine NAME   machine key the pack serves under "
          "(e.g. t3e)\n"
          "  --surfaces DIR   directory of *.surface option files\n"
          "                   (tools/characterize --out layout; see "
          "core/planner_io)\n"
          "  --out FILE       pack file to write (gas-pack-1)\n"
          "  --describe FILE  load a pack and print its contents\n"
          "Converts a measured surface directory into one compact, "
          "mmap-able\nbinary pack for serve::PlannerIndex / "
          "tools/serve; predictions from\nthe pack are bit-identical "
          "to loadPlannerDir on the directory\n(docs/planner_service."
          "md).\n";
}

[[noreturn]] void
usage()
{
    printUsage(std::cerr);
    std::exit(2);
}

int
describe(const std::string &path)
{
    const serve::MachinePack pack = serve::loadPackFile(path);
    std::printf("pack: %s\n", path.c_str());
    std::printf("machine: %s\n", pack.machine.c_str());
    std::printf("options: %zu\n", pack.options.size());
    for (const core::PlanOption &o : pack.options) {
        const core::Surface &s = *o.surface;
        std::printf(
            "  %-16s method=%s stride-on-%s block=%llu "
            "grid=%zux%zu%s\n",
            o.label.c_str(), remote::methodName(o.method),
            o.strideOnSource ? "source" : "dest",
            static_cast<unsigned long long>(o.blockBytes),
            s.workingSets().size(), s.strides().size(),
            s.hasAttribution() ? " +attribution" : "");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string machine;
    std::string surfaces;
    std::string out;
    std::string describePath;

    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "pack: option " << opt
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (opt == "--help" || opt == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (opt == "--machine")
            machine = val();
        else if (opt == "--surfaces")
            surfaces = val();
        else if (opt == "--out")
            out = val();
        else if (opt == "--describe")
            describePath = val();
        else
            usage();
    }

    if (!describePath.empty()) {
        if (!machine.empty() || !surfaces.empty() || !out.empty())
            usage();
        return describe(describePath);
    }
    if (machine.empty() || surfaces.empty() || out.empty())
        usage();

    serve::MachinePack pack;
    pack.machine = machine;
    pack.options = core::loadPlanOptionsDir(surfaces);
    serve::savePackFile(pack, out);
    std::fprintf(stderr, "pack: %s: %zu option(s) from %s -> %s\n",
                 machine.c_str(), pack.options.size(),
                 surfaces.c_str(), out.c_str());
    return 0;
}
