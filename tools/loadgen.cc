/**
 * @file
 * Deterministic load harness for the planner-as-a-service stack.
 *
 *   loadgen --pack FILE [--pack FILE ...] --queries N [--threads T]
 *           [--mix uniform|hot|scan] [--seed S] [--no-cache]
 *           [--cache-capacity N] [--cache-shards N] [--json]
 *           [--profile] [--metrics-out FILE]
 *           [--metrics-interval-ms N] [--timeline FILE]
 *
 * Drives millions of plan queries through one shared
 * serve::PlannerIndex from T threads and reports sustained
 * queries/sec plus p50/p95/p99 per-query latency (per-thread
 * stats::Histogram of nanoseconds, merged order-independently).  The
 * query stream is a pure function of (--seed, --mix, thread id), so
 * two runs issue the identical query multiset regardless of
 * scheduling; an order-independent XOR checksum over the answers'
 * predicted-bandwidth bits is printed so runs can be diffed for
 * answer drift, not just throughput.
 *
 * Mixes:
 *   uniform  many distinct (ws, stride) keys — cache-miss heavy
 *   hot      95% of queries from 64 hot keys — cache-hit heavy
 *   scan     a fixed 1024-query cycle — all hits after warm-up
 *
 * Live telemetry (--metrics-out / --timeline) feeds the process-wide
 * metrics::Registry while load runs: a loadgen.queries counter
 * (exact; CI asserts it equals the completed-query count), a
 * loadgen.latency_us rolling-window histogram, and the decision-cache
 * gauges.  --metrics-out re-exports the registry atomically every
 * interval; --timeline appends one JSON line per second with the
 * completed count, 1s rate, and 1s-window p50/p95/p99, all read from
 * the same registry a scraper would see.  The stdout report and the
 * answer checksum are byte-identical with telemetry on or off.
 */

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.hh"
#include "metrics_flush.hh"
#include "serve/planner_index.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace gasnub;

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: loadgen --pack FILE [--pack FILE ...] --queries N "
          "[options]\n"
          "  --pack FILE        gas-pack-1 surface pack "
          "(repeatable)\n"
          "  --queries N        total queries to issue (required)\n"
          "  --threads T        worker threads (default 1)\n"
          "  --mix NAME         uniform | hot | scan (default "
          "uniform)\n"
          "  --seed S           query-stream seed (default 1)\n"
          "  --no-cache         disable the decision cache\n"
          "  --cache-capacity N decision-cache slots (default "
          "65536)\n"
          "  --cache-shards N   decision-cache shards (default 16)\n"
          "  --json             machine-readable report on stdout\n"
          "  --profile          profiler zone report on stderr\n"
          "  --metrics-out FILE live metrics exposition, rewritten "
          "atomically\n"
          "                     (.json -> JSON, else Prometheus "
          "text)\n"
          "  --metrics-interval-ms N\n"
          "                     flush period for --metrics-out "
          "(default 1000)\n"
          "  --timeline FILE    one JSON line per second: completed, "
          "rate,\n"
          "                     1s-window p50/p95/p99\n"
          "Benchmarks serve::PlannerIndex under a deterministic "
          "seeded query\nmix: reports queries/sec, p50/p95/p99 "
          "latency, cache hit rate, and\nan order-independent answer "
          "checksum (docs/planner_service.md).\n";
}

[[noreturn]] void
usage()
{
    printUsage(std::cerr);
    std::exit(2);
}

enum class Mix { Uniform, Hot, Scan };

/** One pre-materialized query (machine id + planner query). */
struct GenQuery
{
    std::size_t machine = 0;
    core::TransferQuery query;
};

/** A random but well-formed query: ws in [1 KiB, 16 MiB), word-
 *  aligned jitter for key diversity, power-of-two stride. */
GenQuery
uniformQuery(sim::Rng &rng, std::size_t machines)
{
    GenQuery q;
    q.machine = rng.below(machines);
    const std::uint64_t base = std::uint64_t(1024)
                               << rng.below(15);
    q.query.wsBytes = base + 8 * rng.below(4096);
    q.query.bytes = q.query.wsBytes;
    q.query.stride = std::uint64_t(1) << rng.below(8);
    return q;
}

/** The fixed key set a mix draws from (hot: 64, scan: 1024). */
std::vector<GenQuery>
fixedKeys(std::uint64_t seed, std::size_t machines, std::size_t n)
{
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
    std::vector<GenQuery> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back(uniformQuery(rng, machines));
    return keys;
}

struct ThreadResult
{
    std::uint64_t issued = 0;
    std::uint64_t checksum = 0; ///< XOR of predictedMBs bit patterns
    stats::Histogram latency{nullptr, "latency_ns",
                             "per-query plan latency"};
};

/** Registry handles shared by all workers (null when telemetry is
 *  off; the off path costs one branch per query). */
struct Telemetry
{
    metrics::Counter *queries = nullptr;
    metrics::Histogram *latencyUs = nullptr;
};

void
worker(const serve::PlannerIndex &index, Mix mix,
       const std::vector<GenQuery> &keys, std::uint64_t seed,
       std::size_t thread_id, std::uint64_t queries,
       ThreadResult &result, const Telemetry &telem)
{
    GASNUB_PROF_ZONE("loadgen.worker");
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + thread_id + 1);
    const std::size_t machines = index.numMachines();
    for (std::uint64_t i = 0; i < queries; ++i) {
        GenQuery q;
        switch (mix) {
        case Mix::Uniform:
            q = uniformQuery(rng, machines);
            break;
        case Mix::Hot:
            q = rng.below(20) < 19
                    ? keys[rng.below(keys.size())]
                    : uniformQuery(rng, machines);
            break;
        case Mix::Scan:
            q = keys[(thread_id + i) % keys.size()];
            break;
        }
        const auto t0 = std::chrono::steady_clock::now();
        const serve::PlanAnswer a = index.plan(q.machine, q.query);
        const auto t1 = std::chrono::steady_clock::now();
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(a.predictedMBs));
        std::memcpy(&bits, &a.predictedMBs, sizeof(bits));
        result.checksum ^= bits;
        const std::uint64_t ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count());
        result.latency.sample(ns);
        ++result.issued;
        if (telem.queries) {
            telem.queries->add(1);
            telem.latencyUs->sample(ns / 1000,
                                    metrics::monotonicSeconds());
        }
    }
}

const char *
mixName(Mix m)
{
    switch (m) {
    case Mix::Uniform:
        return "uniform";
    case Mix::Hot:
        return "hot";
    case Mix::Scan:
        return "scan";
    }
    GASNUB_PANIC("bad mix");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> packs;
    std::uint64_t queries = 0;
    std::size_t threads = 1;
    Mix mix = Mix::Uniform;
    std::uint64_t seed = 1;
    bool json = false;
    bool profile = false;
    std::string metrics_out;
    int metrics_interval_ms = 1000;
    std::string timeline;
    serve::IndexConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "loadgen: option " << opt
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (opt == "--help" || opt == "-h") {
            printUsage(std::cout);
            return 0;
        } else if (opt == "--pack")
            packs.push_back(val());
        else if (opt == "--queries")
            queries = static_cast<std::uint64_t>(
                std::atoll(val().c_str()));
        else if (opt == "--threads")
            threads = static_cast<std::size_t>(
                std::atoll(val().c_str()));
        else if (opt == "--mix") {
            const std::string m = val();
            if (m == "uniform")
                mix = Mix::Uniform;
            else if (m == "hot")
                mix = Mix::Hot;
            else if (m == "scan")
                mix = Mix::Scan;
            else {
                std::cerr << "loadgen: unknown mix '" << m
                          << "' (want uniform, hot, or scan)\n";
                std::exit(2);
            }
        } else if (opt == "--seed")
            seed = static_cast<std::uint64_t>(
                std::atoll(val().c_str()));
        else if (opt == "--no-cache")
            config.cacheCapacity = 0;
        else if (opt == "--cache-capacity")
            config.cacheCapacity = static_cast<std::size_t>(
                std::atoll(val().c_str()));
        else if (opt == "--cache-shards")
            config.cacheShards = static_cast<std::size_t>(
                std::atoll(val().c_str()));
        else if (opt == "--json")
            json = true;
        else if (opt == "--profile")
            profile = true;
        else if (opt == "--metrics-out")
            metrics_out = val();
        else if (opt == "--metrics-interval-ms")
            metrics_interval_ms = std::atoi(val().c_str());
        else if (opt == "--timeline")
            timeline = val();
        else
            usage();
    }
    if (packs.empty() || queries == 0)
        usage();
    if (threads == 0)
        threads = 1;
    if (metrics_interval_ms < 1)
        metrics_interval_ms = 1;

    if (profile)
        prof::Profiler::enable();
    prof::Profiler::enableFromEnv();
    logTimestampsFromEnv();

    const serve::PlannerIndex index =
        serve::PlannerIndex::fromPackFiles(packs, config);
    const std::vector<GenQuery> keys = fixedKeys(
        seed, index.numMachines(), mix == Mix::Scan ? 1024 : 64);

    Telemetry telem;
    metrics::Registry &reg = metrics::Registry::instance();
    if (!metrics_out.empty() || !timeline.empty()) {
        metrics::setEnabled(true);
        index.registerMetrics(reg);
        telem.queries = &reg.counter("loadgen.queries",
                                     "plan queries completed");
        telem.latencyUs = &reg.histogram(
            "loadgen.latency_us",
            "per-query plan latency (microseconds)");
    }

    // Split the query budget; earlier threads take the remainder.
    std::vector<std::uint64_t> share(threads, queries / threads);
    for (std::uint64_t i = 0; i < queries % threads; ++i)
        ++share[i];

    // The per-second timeline thread reads the same registry objects
    // a scraper would, so it doubles as a live test of the rolling
    // windows under real concurrency.
    std::thread timeline_thread;
    std::mutex tl_mutex;
    std::condition_variable tl_cv;
    bool tl_stop = false;
    if (!timeline.empty()) {
        timeline_thread = std::thread([&] {
            std::ofstream os(timeline, std::ios::trunc);
            if (!os)
                GASNUB_FATAL("loadgen: cannot write timeline file '",
                             timeline, "'");
            std::uint64_t last = 0;
            std::unique_lock<std::mutex> lock(tl_mutex);
            for (;;) {
                tl_cv.wait_for(lock, std::chrono::seconds(1));
                const bool stop = tl_stop;
                const std::int64_t now_sec =
                    metrics::monotonicSeconds();
                const std::uint64_t done = telem.queries->value();
                const metrics::Histogram::Window w =
                    telem.latencyUs->window(1, now_sec);
                char buf[256];
                std::snprintf(
                    buf, sizeof(buf),
                    "{\"t_s\": %lld, \"completed\": %llu, \"qps\": "
                    "%llu, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                    "\"p99_us\": %.1f}\n",
                    static_cast<long long>(now_sec),
                    static_cast<unsigned long long>(done),
                    static_cast<unsigned long long>(done - last),
                    w.p50, w.p95, w.p99);
                os << buf;
                os.flush();
                last = done;
                if (stop)
                    return;
            }
        });
    }

    std::vector<ThreadResult> results(threads);
    // Flusher lifetime brackets the timed region so its exports never
    // land inside the qps measurement window.
    std::optional<toolmetrics::MetricsFlusher> flusher;
    flusher.emplace(reg, metrics_out, metrics_interval_ms);
    const auto start = std::chrono::steady_clock::now();
    {
        GASNUB_PROF_ZONE("loadgen.run");
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker, std::cref(index), mix,
                              std::cref(keys), seed, t, share[t],
                              std::ref(results[t]),
                              std::cref(telem));
        for (std::thread &t : pool)
            t.join();
    }
    const auto end = std::chrono::steady_clock::now();
    // Final exposition after every worker retired its last query.
    flusher.reset();
    if (timeline_thread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(tl_mutex);
            tl_stop = true;
        }
        tl_cv.notify_all();
        timeline_thread.join();
    }
    const double seconds =
        std::chrono::duration<double>(end - start).count();

    ThreadResult total;
    for (const ThreadResult &r : results) {
        total.issued += r.issued;
        total.checksum ^= r.checksum;
        total.latency.mergeFrom(r.latency);
    }
    GASNUB_ASSERT(total.issued == queries, "lost queries");

    const double qps =
        seconds > 0 ? static_cast<double>(total.issued) / seconds
                    : 0.0;
    const double p50 = total.latency.percentile(0.50);
    const double p95 = total.latency.percentile(0.95);
    const double p99 = total.latency.percentile(0.99);
    const serve::DecisionCacheStats cs = index.cacheStats();
    const std::uint64_t lookups = cs.hits + cs.misses;
    const double hit_rate =
        lookups ? static_cast<double>(cs.hits) / lookups : 0.0;

    if (json) {
        std::printf(
            "{\"queries\": %llu, \"threads\": %zu, \"mix\": "
            "\"%s\", \"seed\": %llu, \"seconds\": %.6f, \"qps\": "
            "%.1f, \"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": "
            "%.1f, \"cache\": {\"hits\": %llu, \"misses\": %llu, "
            "\"evictions\": %llu, \"hit_rate\": %.4f}, "
            "\"checksum\": \"%016llx\"}\n",
            static_cast<unsigned long long>(total.issued), threads,
            mixName(mix), static_cast<unsigned long long>(seed),
            seconds, qps, p50, p95, p99,
            static_cast<unsigned long long>(cs.hits),
            static_cast<unsigned long long>(cs.misses),
            static_cast<unsigned long long>(cs.evictions), hit_rate,
            static_cast<unsigned long long>(total.checksum));
    } else {
        std::printf("loadgen: %llu queries, %zu thread(s), mix=%s, "
                    "seed=%llu\n",
                    static_cast<unsigned long long>(total.issued),
                    threads, mixName(mix),
                    static_cast<unsigned long long>(seed));
        std::printf("  elapsed   %.3f s\n", seconds);
        std::printf("  qps       %.0f\n", qps);
        std::printf("  latency   p50 %.0f ns, p95 %.0f ns, p99 "
                    "%.0f ns\n",
                    p50, p95, p99);
        std::printf("  cache     hits=%llu misses=%llu "
                    "evictions=%llu hit-rate=%.2f%%\n",
                    static_cast<unsigned long long>(cs.hits),
                    static_cast<unsigned long long>(cs.misses),
                    static_cast<unsigned long long>(cs.evictions),
                    hit_rate * 100.0);
        std::printf("  checksum  %016llx\n",
                    static_cast<unsigned long long>(
                        total.checksum));
    }

    if (prof::enabled())
        prof::Profiler::instance().report(std::cerr);
    return 0;
}
