/**
 * @file
 * Command-line characterizer: run any of the paper's micro-benchmark
 * sweeps on any machine and print (or save) the resulting surface.
 *
 *   characterize <machine> <benchmark> [options]
 *
 *   machine    dec8400 | t3d | t3e
 *   benchmark  loads | stores | copy-sload | copy-sstore |
 *              pull | fetch-sload | deposit-sstore
 *   options    --max-ws <size>   largest working set (default 8M)
 *              --cap <size>      simulation cap (default 4M)
 *              --out <file>      save the surface (gasnub format)
 *              --procs <n>       machine size (default 4)
 *              --trace-out <file>        event trace (Chrome trace
 *                                        JSON; CSV if <file> ends in
 *                                        .csv)
 *              --trace-categories <list> comma-separated subset of
 *                                        mem,noc,remote,kernel,sim
 *              --stats-json <file>       stats tree as JSON
 *
 * Options accept both "--opt value" and "--opt=value".
 *
 * Saved surfaces can be reloaded with core::loadSurfaceFile and fed
 * to the TransferPlanner — the measure-once / decide-often split of
 * the paper's compiler workflow.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/characterizer.hh"
#include "core/surface_io.hh"
#include "machine/machine.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

using namespace gasnub;

namespace {

void
usage()
{
    std::cerr
        << "usage: characterize <dec8400|t3d|t3e> <benchmark> "
           "[--max-ws N] [--cap N]\n"
           "                    [--out FILE] [--procs N] "
           "[--trace-out FILE]\n"
           "                    [--trace-categories LIST] "
           "[--stats-json FILE]\n"
           "benchmarks: loads stores copy-sload copy-sstore pull\n"
           "            fetch-sload deposit-sstore\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();

    machine::SystemKind kind;
    const std::string mname = argv[1];
    if (mname == "dec8400")
        kind = machine::SystemKind::Dec8400;
    else if (mname == "t3d")
        kind = machine::SystemKind::CrayT3D;
    else if (mname == "t3e")
        kind = machine::SystemKind::CrayT3E;
    else
        usage();

    const std::string benchmark = argv[2];
    std::uint64_t max_ws = 8_MiB;
    std::uint64_t cap = 4_MiB;
    std::string out;
    int procs = 4;
    std::string trace_out;
    std::string trace_categories = "all";
    std::string stats_json;
    for (int i = 3; i < argc; ++i) {
        std::string opt = argv[i];
        std::string val;
        // Accept both "--opt value" and "--opt=value".
        const std::size_t eq = opt.find('=');
        if (eq != std::string::npos) {
            val = opt.substr(eq + 1);
            opt = opt.substr(0, eq);
        } else {
            if (i + 1 >= argc)
                usage();
            val = argv[++i];
        }
        if (opt == "--max-ws")
            max_ws = parseSize(val);
        else if (opt == "--cap")
            cap = parseSize(val);
        else if (opt == "--out")
            out = val;
        else if (opt == "--procs")
            procs = std::stoi(val);
        else if (opt == "--trace-out")
            trace_out = val;
        else if (opt == "--trace-categories")
            trace_categories = val;
        else if (opt == "--stats-json")
            stats_json = val;
        else
            usage();
    }

    if (!trace_out.empty())
        trace::Tracer::instance().setMask(
            trace::parseCategories(trace_categories));

    machine::Machine m(kind, procs);
    core::Characterizer c(m);
    core::CharacterizeConfig cfg;
    cfg.maxWorkingSet = max_ws;
    cfg.capBytes = cap;

    const NodeId src = kind == machine::SystemKind::CrayT3D ? 0 : 1;
    const NodeId dst = kind == machine::SystemKind::CrayT3D ? 2 : 0;

    core::Surface s("", {512}, {1});
    if (benchmark == "loads") {
        s = c.localLoads(0, cfg);
    } else if (benchmark == "stores") {
        s = c.localStores(0, cfg);
    } else if (benchmark == "copy-sload") {
        s = c.localCopy(0, kernels::CopyVariant::StridedLoads, cfg);
    } else if (benchmark == "copy-sstore") {
        s = c.localCopy(0, kernels::CopyVariant::StridedStores, cfg);
    } else if (benchmark == "pull") {
        s = c.remoteTransfer(remote::TransferMethod::CoherentPull,
                             true, cfg, src, dst);
    } else if (benchmark == "fetch-sload") {
        s = c.remoteTransfer(remote::TransferMethod::Fetch, true,
                             cfg, src, dst);
    } else if (benchmark == "deposit-sstore") {
        s = c.remoteTransfer(remote::TransferMethod::Deposit, false,
                             cfg, src, dst);
    } else {
        usage();
    }

    s.print(std::cout);
    if (!out.empty()) {
        core::saveSurfaceFile(s, out);
        std::cout << "saved to " << out << "\n";
    }
    if (!trace_out.empty()) {
        trace::Tracer &tracer = trace::Tracer::instance();
        std::ofstream os(trace_out);
        if (!os)
            GASNUB_FATAL("cannot open ", trace_out);
        const bool csv =
            trace_out.size() > 4 &&
            trace_out.compare(trace_out.size() - 4, 4, ".csv") == 0;
        if (csv)
            tracer.exportCsv(os);
        else
            tracer.exportChromeJson(os);
        std::cerr << "trace: " << tracer.size() << " events to "
                  << trace_out;
        if (tracer.dropped())
            std::cerr << " (" << tracer.dropped() << " dropped)";
        std::cerr << "\n";
    }
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os)
            GASNUB_FATAL("cannot open ", stats_json);
        m.statsGroup().dumpJson(os);
        os << "\n";
        std::cerr << "stats: " << stats_json << "\n";
    }
    return 0;
}
