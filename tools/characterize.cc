/**
 * @file
 * Command-line characterizer: run any of the paper's micro-benchmark
 * sweeps on any machine and print (or save) the resulting surface.
 *
 *   characterize <machine> <benchmark> [options]
 *
 *   machine    dec8400 | t3d | t3e
 *   benchmark  loads | stores | copy-sload | copy-sstore |
 *              pull | fetch-sload | fetch-sstore |
 *              deposit-sload | deposit-sstore
 *   options    --max-ws <size>   largest working set (default 8M)
 *              --cap <size>      simulation cap (default 4M)
 *              --out <file>      save the surface (gasnub format)
 *              --procs <n>       machine size (default 4)
 *              --trace-out <file>        event trace (Chrome trace
 *                                        JSON; CSV if <file> ends in
 *                                        .csv)
 *              --trace-categories <list> comma-separated subset of
 *                                        mem,noc,remote,kernel,sim
 *              --stats-json <file>       stats tree as JSON
 *              --jobs <n>        worker threads for the sweep
 *                                (default: GASNUB_JOBS, then hardware
 *                                concurrency; 1 = serial)
 *
 * Options accept both "--opt value" and "--opt=value"; unknown or
 * malformed options are rejected with a usage error.
 *
 * Parallel sweeps produce byte-identical surface, trace, and stats
 * output to --jobs 1 (see docs/parallel_sweeps.md).
 *
 * Saved surfaces can be reloaded with core::loadSurfaceFile and fed
 * to the TransferPlanner — the measure-once / decide-often split of
 * the paper's compiler workflow.  Remote benchmark names double as
 * the core::loadPlannerDir naming convention: export each remote
 * surface as <benchmark>.surface into one directory and a planner
 * (or a gas::Runtime with Method::Auto) rebuilds the machine's cost
 * model from it.  `characterize --help` walks through the pipeline.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include <chrono>
#include <optional>

#include "core/characterizer.hh"
#include "core/surface_io.hh"
#include "core/sweep_runner.hh"
#include "core/telemetry.hh"
#include "machine/machine.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/pool.hh"
#include "sim/profiler.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

using namespace gasnub;

namespace {

void
printUsage(std::ostream &os)
{
    os << "usage: characterize <dec8400|t3d|t3e> <benchmark> "
          "[--max-ws N] [--cap N]\n"
          "                    [--out FILE] [--procs N] [--jobs N]\n"
          "                    [--trace-out FILE] "
          "[--trace-categories LIST]\n"
          "                    [--stats-json FILE] [--faults SPEC] "
          "[--attribution]\n"
          "                    [--profile] [--profile-json FILE] "
          "[--profile-folded FILE]\n"
          "       characterize --help\n"
          "benchmarks: loads stores copy-sload copy-sstore pull\n"
          "            fetch-sload fetch-sstore deposit-sload "
          "deposit-sstore\n";
}

void
usage()
{
    printUsage(std::cerr);
    std::exit(2);
}

/** --help: the full option reference plus the planner pipeline. */
void
help()
{
    printUsage(std::cout);
    std::cout
        << "\n"
           "options:\n"
           "  --max-ws N          largest working set (default 8M; "
           "sizes take K/M suffixes)\n"
           "  --cap N             simulation cap per grid point "
           "(default 4M)\n"
           "  --out FILE          save the surface (gasnub format, "
           "loadable with\n"
           "                      core::loadSurfaceFile)\n"
           "  --procs N           machine size in nodes (default 4)\n"
           "  --jobs N            worker threads for the sweep "
           "(default: GASNUB_JOBS,\n"
           "                      then hardware concurrency; 1 = "
           "serial; any value gives\n"
           "                      byte-identical output)\n"
           "  --trace-out FILE    event trace (Chrome trace JSON; CSV "
           "if FILE ends in .csv)\n"
           "  --trace-categories  comma-separated subset of "
           "mem,noc,remote,kernel,sim\n"
           "  --stats-json FILE   stats tree as JSON; with --jobs N "
           "the workers'\n"
           "                      stats are merged deterministically, "
           "so the file is\n"
           "                      byte-identical for any N (including "
           "the timeAccount\n"
           "                      ledger written with --attribution)\n"
           "  --attribution       account every simulated tick to the "
           "hardware\n"
           "                      resource that consumed it; surfaces "
           "saved with --out\n"
           "                      gain per-point attribution rows "
           "(format v2) and\n"
           "                      --stats-json gains the cumulative "
           "ledger; feed either\n"
           "                      to tools/report for a ranked "
           "bottleneck breakdown\n"
           "  --profile           profile the simulator itself "
           "(host wall clock):\n"
           "                      ranked zone report on stderr, plus "
           "points/sec,\n"
           "                      accesses/sec and per-worker "
           "utilization under the\n"
           "                      'perf' group of --stats-json "
           "(GASNUB_PROFILE=1 works\n"
           "                      too); measured surfaces stay "
           "byte-identical\n"
           "  --profile-json FILE  write the zone profile as JSON "
           "(implies --profile)\n"
           "  --profile-folded FILE  write folded stacks for "
           "flamegraph.pl /\n"
           "                      speedscope (implies --profile); see "
           "docs/perf_tracking.md\n"
           "  --faults SPEC       inject faults while measuring "
           "(default: GASNUB_FAULTS;\n"
           "                      SPEC is a ';'-separated list or "
           "@file — see\n"
           "                      docs/fault_injection.md)\n"
           "\n"
           "fault injection examples:\n"
           "\n"
           "  characterize t3e fetch-sload "
           "--faults 'seed=7;link-slow:router=0,dir=+x,factor=8'\n"
           "  characterize t3d deposit-sstore "
           "--faults 'dram-stall:node=2,prob=.2,extra=400'\n"
           "  characterize dec8400 pull --faults @storm.plan   "
           "# spec file, '#' comments\n"
           "  GASNUB_FAULTS='refresh-storm:period=50000,window=5000' "
           "characterize t3e loads\n"
           "\n"
           "  The same seed and plan reproduce the same surface at "
           "any --jobs\n"
           "  value; without --faults (and with GASNUB_FAULTS unset) "
           "the fault\n"
           "  machinery is never built and output is byte-identical "
           "to older\n"
           "  builds.\n"
           "\n"
           "measure once, decide often — the planner pipeline:\n"
           "\n"
           "  The remote benchmarks (pull, fetch-sload, fetch-sstore,\n"
           "  deposit-sload, deposit-sstore) are a machine's transfer\n"
           "  implementation options.  Export each surface under its\n"
           "  benchmark name into one directory:\n"
           "\n"
           "    characterize t3e fetch-sload    --out s/fetch-sload."
           "surface\n"
           "    characterize t3e deposit-sstore --out s/deposit-sstore."
           "surface\n"
           "\n"
           "  then rebuild the cost model without re-simulating:\n"
           "  core::loadPlannerDir(\"s\") returns a TransferPlanner "
           "whose\n"
           "  best() picks the fastest option per transfer shape, and\n"
           "  gas::Runtime::setPlanner(core::loadPlannerDir(\"s\")) "
           "makes\n"
           "  every rput/rget with Method::Auto consult it — "
           "reproducing\n"
           "  the paper's Section 9 back-end choices per call.  See\n"
           "  docs/gas_runtime.md and examples/gas_halo.cpp "
           "(--surfaces).\n";
    std::exit(0);
}

/** Reject a bad command line with a message and the usage text. */
void
fail(const std::string &message)
{
    std::cerr << "characterize: " << message << "\n";
    usage();
}

/** Parse a positive decimal integer option value. */
int
parseIntOpt(const std::string &opt, const std::string &val)
{
    char *end = nullptr;
    const long v = std::strtol(val.c_str(), &end, 10);
    if (end == val.c_str() || *end != '\0' || v < 1 || v > 1'000'000)
        fail("bad value '" + val + "' for " + opt +
             " (expected a positive integer)");
    return static_cast<int>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0)
            help();
    }
    if (argc < 3)
        usage();

    machine::SystemKind kind;
    const std::string mname = argv[1];
    if (mname == "dec8400")
        kind = machine::SystemKind::Dec8400;
    else if (mname == "t3d")
        kind = machine::SystemKind::CrayT3D;
    else if (mname == "t3e")
        kind = machine::SystemKind::CrayT3E;
    else
        usage();

    const std::string benchmark = argv[2];
    std::uint64_t max_ws = 8_MiB;
    std::uint64_t cap = 4_MiB;
    std::string out;
    int procs = 4;
    int jobs_arg = 0;
    std::string trace_out;
    std::string trace_categories = "all";
    std::string stats_json;
    std::string faults_arg;
    bool attribution = false;
    bool profile = false;
    std::string profile_json;
    std::string profile_folded;
    for (int i = 3; i < argc; ++i) {
        std::string opt = argv[i];
        std::string val;
        if (opt.rfind("--", 0) != 0)
            fail("unexpected argument '" + opt + "'");
        if (opt == "--attribution") {
            attribution = true;
            continue;
        }
        if (opt == "--profile") {
            profile = true;
            continue;
        }
        // Accept both "--opt value" and "--opt=value".
        const std::size_t eq = opt.find('=');
        if (eq != std::string::npos) {
            val = opt.substr(eq + 1);
            opt = opt.substr(0, eq);
            if (val.empty())
                fail("empty value in '" + std::string(argv[i]) + "'");
        } else {
            if (i + 1 >= argc)
                fail("option " + opt + " needs a value");
            val = argv[++i];
            if (val.rfind("--", 0) == 0)
                fail("option " + opt + " needs a value (got '" + val +
                     "')");
        }
        if (opt == "--max-ws")
            max_ws = parseSize(val);
        else if (opt == "--cap")
            cap = parseSize(val);
        else if (opt == "--out")
            out = val;
        else if (opt == "--procs")
            procs = parseIntOpt(opt, val);
        else if (opt == "--jobs")
            jobs_arg = parseIntOpt(opt, val);
        else if (opt == "--trace-out")
            trace_out = val;
        else if (opt == "--trace-categories")
            trace_categories = val;
        else if (opt == "--stats-json")
            stats_json = val;
        else if (opt == "--faults")
            faults_arg = val;
        else if (opt == "--profile-json")
            profile_json = val;
        else if (opt == "--profile-folded")
            profile_folded = val;
        else
            fail("unknown option '" + opt + "'");
    }

    if (profile || !profile_json.empty() || !profile_folded.empty())
        prof::Profiler::enable(true);
    prof::Profiler::enableFromEnv();

    if (!trace_out.empty())
        trace::Tracer::instance().setMask(
            trace::parseCategories(trace_categories));

    core::CharacterizeConfig cfg;
    cfg.maxWorkingSet = max_ws;
    cfg.capBytes = cap;

    const NodeId src = kind == machine::SystemKind::CrayT3D ? 0 : 1;
    const NodeId dst = kind == machine::SystemKind::CrayT3D ? 2 : 0;

    core::SweepSpec spec;
    if (benchmark == "loads") {
        spec = core::SweepSpec::localLoads(0);
    } else if (benchmark == "stores") {
        spec = core::SweepSpec::localStores(0);
    } else if (benchmark == "copy-sload") {
        spec = core::SweepSpec::localCopy(
            kernels::CopyVariant::StridedLoads, 0);
    } else if (benchmark == "copy-sstore") {
        spec = core::SweepSpec::localCopy(
            kernels::CopyVariant::StridedStores, 0);
    } else if (benchmark == "pull") {
        spec = core::SweepSpec::remote(
            remote::TransferMethod::CoherentPull, true, src, dst);
    } else if (benchmark == "fetch-sload") {
        spec = core::SweepSpec::remote(remote::TransferMethod::Fetch,
                                       true, src, dst);
    } else if (benchmark == "fetch-sstore") {
        spec = core::SweepSpec::remote(remote::TransferMethod::Fetch,
                                       false, src, dst);
    } else if (benchmark == "deposit-sload") {
        spec = core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                       true, src, dst);
    } else if (benchmark == "deposit-sstore") {
        spec = core::SweepSpec::remote(remote::TransferMethod::Deposit,
                                       false, src, dst);
    } else {
        fail("unknown benchmark '" + benchmark + "'");
    }

    // The main machine is constructed either way: it registers the
    // same trace tracks a serial run would, and it is where parallel
    // workers' stats are merged, so the observability outputs are
    // byte-identical for any --jobs value.
    machine::SystemConfig sys;
    sys.kind = kind;
    sys.numNodes = procs;
    sys.faults = sim::FaultPlan::fromEnvOr(faults_arg);
    sys.attribution = attribution;
    if (!sys.faults.empty())
        std::cerr << "faults: " << sys.faults.describe() << "\n";
    machine::Machine m(sys);
    core::Characterizer c(m);

    const int jobs = sim::defaultJobs(jobs_arg);
    // Throughput telemetry rides the stats tree only under --profile:
    // the rates are wall-clock derived, and the default --stats-json
    // must stay byte-identical across runs and --jobs values.  The
    // "perf" group attaches only after the sweep (and after the
    // parallel workers' exact-structure stats merge, which the extra
    // child would otherwise break).
    std::optional<core::SweepTelemetry> telemetry;
    const auto wallStart = std::chrono::steady_clock::now();
    core::Surface s("", {512}, {1});
    try {
        if (jobs <= 1) {
            s = c.run(spec, cfg);
            if (prof::enabled()) {
                telemetry.emplace(m.statsGroup(), jobs);
                telemetry->recordSweep(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wallStart)
                        .count(),
                    c.points(), c.accesses());
            }
        } else {
            core::SweepRunner runner(sys, jobs);
            s = runner.run(spec, cfg);
            runner.mergeStatsInto(m.statsGroup());
            if (prof::enabled()) {
                telemetry.emplace(m.statsGroup(), jobs);
                telemetry->recordSweep(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wallStart)
                        .count(),
                    runner.points(), runner.accesses());
                telemetry->updateWorkers(
                    runner.pool().workerTelemetry());
            }
        }
    } catch (const sim::FaultError &e) {
        // Characterization kernels do not retry: a fault that severs
        // the measured path ends the sweep with a clean diagnosis
        // rather than an abort.
        GASNUB_FATAL("fault injection made the sweep impossible: ",
                     e.what());
    }

    s.print(std::cout);
    if (!out.empty()) {
        core::saveSurfaceFile(s, out);
        std::cout << "saved to " << out << "\n";
    }
    if (!trace_out.empty()) {
        trace::Tracer &tracer = trace::Tracer::instance();
        std::ofstream os(trace_out);
        if (!os)
            GASNUB_FATAL("cannot open ", trace_out);
        const bool csv =
            trace_out.size() > 4 &&
            trace_out.compare(trace_out.size() - 4, 4, ".csv") == 0;
        if (csv)
            tracer.exportCsv(os);
        else
            tracer.exportChromeJson(os);
        std::cerr << "trace: " << tracer.size() << " events to "
                  << trace_out;
        if (tracer.dropped())
            std::cerr << " (" << tracer.dropped() << " dropped)";
        std::cerr << "\n";
    }
    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os)
            GASNUB_FATAL("cannot open ", stats_json);
        m.statsGroup().dumpJson(os);
        os << "\n";
        std::cerr << "stats: " << stats_json << "\n";
    }
    if (prof::enabled()) {
        const prof::Profiler &profiler = prof::Profiler::instance();
        profiler.report(std::cerr);
        if (telemetry)
            std::cerr << "throughput: " << telemetry->points()
                      << " points in " << telemetry->wallSeconds()
                      << " s\n";
        if (!profile_json.empty()) {
            std::ofstream os(profile_json);
            if (!os)
                GASNUB_FATAL("cannot open ", profile_json);
            profiler.reportJson(os);
            std::cerr << "profile: " << profile_json << "\n";
        }
        if (!profile_folded.empty()) {
            std::ofstream os(profile_folded);
            if (!os)
                GASNUB_FATAL("cannot open ", profile_folded);
            profiler.reportFolded(os);
            std::cerr << "profile: " << profile_folded << "\n";
        }
    }
    return 0;
}
