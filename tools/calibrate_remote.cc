// Scratch calibration: remote transfer bandwidths vs paper targets.
// Accepts --jobs N (default: GASNUB_JOBS, then hardware concurrency);
// every row is a parallel sweep over its stride axis and rows print
// in a fixed order, so the output is identical for any worker count.
#include <cstdio>
#include <cstring>
#include <vector>
#include "core/sweep_runner.hh"
#include "sim/pool.hh"
#include "sim/units.hh"

using namespace gasnub;
using remote::TransferMethod;

static void row(core::SweepRunner& runner, const char* label,
                TransferMethod meth, bool strideOnSrc,
                std::uint64_t ws,
                const std::vector<std::uint64_t>& strides) {
    core::CharacterizeConfig cfg;
    cfg.workingSets = {ws};
    cfg.strides = strides;
    // src 0 / dst 2: distinct NICs on the paired-PE T3D.
    core::Surface s = runner.remoteTransfer(meth, strideOnSrc, cfg,
                                            0, 2);
    std::printf("%-28s", label);
    for (auto st : strides) std::printf("%7.0f", s.at(ws, st));
    std::printf("\n");
}

int main(int argc, char** argv) {
    int jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (!std::strncmp(argv[i], "--jobs=", 7)) {
            jobs = std::atoi(argv[i] + 7);
        } else {
            std::fprintf(stderr, "usage: calibrate_remote [--jobs N]\n");
            return 2;
        }
    }
    jobs = sim::defaultJobs(jobs);

    const std::vector<std::uint64_t> strides =
        {1,2,3,4,5,8,16,31,32,63,64};
    std::printf("%-28s", "machine/method (65M)");
    for (auto s : strides) std::printf("%7llu", (unsigned long long)s);
    std::printf("\n");

    machine::SystemConfig dec;
    dec.kind = machine::SystemKind::Dec8400;
    core::SweepRunner decr(dec, jobs);
    row(decr, "8400 pull (tgt 140->22)", TransferMethod::CoherentPull,
        true, 65*1_MiB, strides);
    row(decr, "8400 pull ws=2M cached", TransferMethod::CoherentPull,
        true, 2*1_MiB, strides);

    machine::SystemConfig t3d;
    t3d.kind = machine::SystemKind::CrayT3D;
    core::SweepRunner t3dr(t3d, jobs);
    row(t3dr, "t3d deposit sload (->43)", TransferMethod::Deposit,
        true, 65*1_MiB, strides);
    row(t3dr, "t3d deposit sstore (->55)", TransferMethod::Deposit,
        false, 65*1_MiB, strides);
    row(t3dr, "t3d fetch sload (~80/30)", TransferMethod::Fetch,
        true, 65*1_MiB, strides);

    machine::SystemConfig t3e;
    t3e.kind = machine::SystemKind::CrayT3E;
    core::SweepRunner t3er(t3e, jobs);
    row(t3er, "t3e iget sload (350->140)", TransferMethod::Fetch,
        true, 65*1_MiB, strides);
    row(t3er, "t3e iput sstore (350,70/140)", TransferMethod::Deposit,
        false, 65*1_MiB, strides);
    return 0;
}
