// Scratch calibration: remote transfer bandwidths vs paper targets.
#include <cstdio>
#include "kernels/remote_kernels.hh"
#include "sim/units.hh"

using namespace gasnub;
using remote::TransferMethod;

static void row(machine::Machine& m, const char* label,
                TransferMethod meth, bool strideOnSrc,
                std::uint64_t ws,
                std::initializer_list<std::uint64_t> strides) {
    std::printf("%-28s", label);
    for (auto s : strides) {
        kernels::RemoteParams p;
        p.src = 0; p.dst = 2;  // distinct NICs on the paired-PE T3D
        p.wsBytes = ws; p.stride = s; p.method = meth;
        p.strideOnSource = strideOnSrc;
        p.srcBase = 0; p.dstBase = 1ull << 33;
        auto r = kernels::remoteTransfer(m, p);
        std::printf("%7.0f", r.mbs);
    }
    std::printf("\n");
}

int main() {
    std::initializer_list<std::uint64_t> strides = {1,2,3,4,5,8,16,31,32,63,64};
    std::printf("%-28s", "machine/method (65M)");
    for (auto s : strides) std::printf("%7llu", (unsigned long long)s);
    std::printf("\n");

    machine::Machine dec(machine::SystemKind::Dec8400, 4);
    row(dec, "8400 pull (tgt 140->22)", TransferMethod::CoherentPull,
        true, 65*1_MiB, strides);
    row(dec, "8400 pull ws=2M cached", TransferMethod::CoherentPull,
        true, 2*1_MiB, strides);

    machine::Machine t3d(machine::SystemKind::CrayT3D, 4);
    row(t3d, "t3d deposit sload (->43)", TransferMethod::Deposit,
        true, 65*1_MiB, strides);
    row(t3d, "t3d deposit sstore (->55)", TransferMethod::Deposit,
        false, 65*1_MiB, strides);
    row(t3d, "t3d fetch sload (~80/30)", TransferMethod::Fetch,
        true, 65*1_MiB, strides);

    machine::Machine t3e(machine::SystemKind::CrayT3E, 4);
    row(t3e, "t3e iget sload (350->140)", TransferMethod::Fetch,
        true, 65*1_MiB, strides);
    row(t3e, "t3e iput sstore (350,70/140)", TransferMethod::Deposit,
        false, 65*1_MiB, strides);
    return 0;
}
