# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_remote[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
