file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_characterizer.cc.o"
  "CMakeFiles/test_core.dir/core/test_characterizer.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_redistribution.cc.o"
  "CMakeFiles/test_core.dir/core/test_redistribution.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_redistribution2d.cc.o"
  "CMakeFiles/test_core.dir/core/test_redistribution2d.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_surface_io.cc.o"
  "CMakeFiles/test_core.dir/core/test_surface_io.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_surface_planner.cc.o"
  "CMakeFiles/test_core.dir/core/test_surface_planner.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
