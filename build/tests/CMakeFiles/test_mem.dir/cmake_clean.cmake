file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_access.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_access.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_cache.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_dram.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_dram.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_hierarchy.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_hierarchy.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_resource.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_resource.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_stream_wbq.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_stream_wbq.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
