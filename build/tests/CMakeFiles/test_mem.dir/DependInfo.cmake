
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_access.cc" "tests/CMakeFiles/test_mem.dir/mem/test_access.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_access.cc.o.d"
  "/root/repo/tests/mem/test_cache.cc" "tests/CMakeFiles/test_mem.dir/mem/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_cache.cc.o.d"
  "/root/repo/tests/mem/test_dram.cc" "tests/CMakeFiles/test_mem.dir/mem/test_dram.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_dram.cc.o.d"
  "/root/repo/tests/mem/test_hierarchy.cc" "tests/CMakeFiles/test_mem.dir/mem/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_hierarchy.cc.o.d"
  "/root/repo/tests/mem/test_resource.cc" "tests/CMakeFiles/test_mem.dir/mem/test_resource.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_resource.cc.o.d"
  "/root/repo/tests/mem/test_stream_wbq.cc" "tests/CMakeFiles/test_mem.dir/mem/test_stream_wbq.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_stream_wbq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gasnub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/gasnub_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/gasnub_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/gasnub_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/gasnub_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/gasnub_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gasnub_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gasnub_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gasnub_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
