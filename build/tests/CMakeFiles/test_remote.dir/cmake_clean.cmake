file(REMOVE_RECURSE
  "CMakeFiles/test_remote.dir/remote/test_aapc.cc.o"
  "CMakeFiles/test_remote.dir/remote/test_aapc.cc.o.d"
  "CMakeFiles/test_remote.dir/remote/test_engines.cc.o"
  "CMakeFiles/test_remote.dir/remote/test_engines.cc.o.d"
  "test_remote"
  "test_remote.pdb"
  "test_remote[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
