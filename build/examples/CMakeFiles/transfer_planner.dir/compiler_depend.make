# Empty compiler generated dependencies file for transfer_planner.
# This may be replaced when dependencies are built.
