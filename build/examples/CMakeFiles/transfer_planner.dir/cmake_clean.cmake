file(REMOVE_RECURSE
  "CMakeFiles/transfer_planner.dir/transfer_planner.cpp.o"
  "CMakeFiles/transfer_planner.dir/transfer_planner.cpp.o.d"
  "transfer_planner"
  "transfer_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
