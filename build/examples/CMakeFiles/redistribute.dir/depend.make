# Empty dependencies file for redistribute.
# This may be replaced when dependencies are built.
