file(REMOVE_RECURSE
  "CMakeFiles/redistribute.dir/redistribute.cpp.o"
  "CMakeFiles/redistribute.dir/redistribute.cpp.o.d"
  "redistribute"
  "redistribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
