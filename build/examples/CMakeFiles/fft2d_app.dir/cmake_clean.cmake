file(REMOVE_RECURSE
  "CMakeFiles/fft2d_app.dir/fft2d_app.cpp.o"
  "CMakeFiles/fft2d_app.dir/fft2d_app.cpp.o.d"
  "fft2d_app"
  "fft2d_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
