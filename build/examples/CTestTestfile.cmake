# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "t3e")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transfer_planner "/root/repo/build/examples/transfer_planner")
set_tests_properties(example_transfer_planner PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft2d_app "/root/repo/build/examples/fft2d_app" "t3d" "128")
set_tests_properties(example_fft2d_app PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_machine "/root/repo/build/examples/custom_machine")
set_tests_properties(example_custom_machine PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_redistribute "/root/repo/build/examples/redistribute" "t3e")
set_tests_properties(example_redistribute PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
