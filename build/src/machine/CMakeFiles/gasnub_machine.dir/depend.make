# Empty dependencies file for gasnub_machine.
# This may be replaced when dependencies are built.
