file(REMOVE_RECURSE
  "libgasnub_machine.a"
)
