file(REMOVE_RECURSE
  "CMakeFiles/gasnub_machine.dir/configs.cc.o"
  "CMakeFiles/gasnub_machine.dir/configs.cc.o.d"
  "CMakeFiles/gasnub_machine.dir/machine.cc.o"
  "CMakeFiles/gasnub_machine.dir/machine.cc.o.d"
  "CMakeFiles/gasnub_machine.dir/sync.cc.o"
  "CMakeFiles/gasnub_machine.dir/sync.cc.o.d"
  "libgasnub_machine.a"
  "libgasnub_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
