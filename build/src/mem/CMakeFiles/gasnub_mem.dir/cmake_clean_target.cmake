file(REMOVE_RECURSE
  "libgasnub_mem.a"
)
