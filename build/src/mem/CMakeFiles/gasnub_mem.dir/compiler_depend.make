# Empty compiler generated dependencies file for gasnub_mem.
# This may be replaced when dependencies are built.
