file(REMOVE_RECURSE
  "CMakeFiles/gasnub_mem.dir/cache.cc.o"
  "CMakeFiles/gasnub_mem.dir/cache.cc.o.d"
  "CMakeFiles/gasnub_mem.dir/dram.cc.o"
  "CMakeFiles/gasnub_mem.dir/dram.cc.o.d"
  "CMakeFiles/gasnub_mem.dir/hierarchy.cc.o"
  "CMakeFiles/gasnub_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/gasnub_mem.dir/stream.cc.o"
  "CMakeFiles/gasnub_mem.dir/stream.cc.o.d"
  "CMakeFiles/gasnub_mem.dir/wbq.cc.o"
  "CMakeFiles/gasnub_mem.dir/wbq.cc.o.d"
  "libgasnub_mem.a"
  "libgasnub_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
