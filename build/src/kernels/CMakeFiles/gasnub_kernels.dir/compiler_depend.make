# Empty compiler generated dependencies file for gasnub_kernels.
# This may be replaced when dependencies are built.
