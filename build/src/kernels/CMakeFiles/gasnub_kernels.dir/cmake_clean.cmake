file(REMOVE_RECURSE
  "CMakeFiles/gasnub_kernels.dir/blocked.cc.o"
  "CMakeFiles/gasnub_kernels.dir/blocked.cc.o.d"
  "CMakeFiles/gasnub_kernels.dir/indexed.cc.o"
  "CMakeFiles/gasnub_kernels.dir/indexed.cc.o.d"
  "CMakeFiles/gasnub_kernels.dir/kernels.cc.o"
  "CMakeFiles/gasnub_kernels.dir/kernels.cc.o.d"
  "CMakeFiles/gasnub_kernels.dir/remote_kernels.cc.o"
  "CMakeFiles/gasnub_kernels.dir/remote_kernels.cc.o.d"
  "libgasnub_kernels.a"
  "libgasnub_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
