file(REMOVE_RECURSE
  "libgasnub_kernels.a"
)
