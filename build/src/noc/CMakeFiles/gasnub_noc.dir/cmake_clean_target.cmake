file(REMOVE_RECURSE
  "libgasnub_noc.a"
)
