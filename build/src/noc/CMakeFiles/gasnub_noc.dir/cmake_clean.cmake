file(REMOVE_RECURSE
  "CMakeFiles/gasnub_noc.dir/torus.cc.o"
  "CMakeFiles/gasnub_noc.dir/torus.cc.o.d"
  "libgasnub_noc.a"
  "libgasnub_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
