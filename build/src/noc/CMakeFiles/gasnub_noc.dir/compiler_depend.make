# Empty compiler generated dependencies file for gasnub_noc.
# This may be replaced when dependencies are built.
