# Empty dependencies file for gasnub_core.
# This may be replaced when dependencies are built.
