file(REMOVE_RECURSE
  "libgasnub_core.a"
)
