
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterizer.cc" "src/core/CMakeFiles/gasnub_core.dir/characterizer.cc.o" "gcc" "src/core/CMakeFiles/gasnub_core.dir/characterizer.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/gasnub_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/gasnub_core.dir/planner.cc.o.d"
  "/root/repo/src/core/redistribution.cc" "src/core/CMakeFiles/gasnub_core.dir/redistribution.cc.o" "gcc" "src/core/CMakeFiles/gasnub_core.dir/redistribution.cc.o.d"
  "/root/repo/src/core/redistribution2d.cc" "src/core/CMakeFiles/gasnub_core.dir/redistribution2d.cc.o" "gcc" "src/core/CMakeFiles/gasnub_core.dir/redistribution2d.cc.o.d"
  "/root/repo/src/core/surface.cc" "src/core/CMakeFiles/gasnub_core.dir/surface.cc.o" "gcc" "src/core/CMakeFiles/gasnub_core.dir/surface.cc.o.d"
  "/root/repo/src/core/surface_io.cc" "src/core/CMakeFiles/gasnub_core.dir/surface_io.cc.o" "gcc" "src/core/CMakeFiles/gasnub_core.dir/surface_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/gasnub_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/gasnub_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/gasnub_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/gasnub_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gasnub_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gasnub_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gasnub_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
