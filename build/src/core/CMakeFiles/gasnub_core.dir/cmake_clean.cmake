file(REMOVE_RECURSE
  "CMakeFiles/gasnub_core.dir/characterizer.cc.o"
  "CMakeFiles/gasnub_core.dir/characterizer.cc.o.d"
  "CMakeFiles/gasnub_core.dir/planner.cc.o"
  "CMakeFiles/gasnub_core.dir/planner.cc.o.d"
  "CMakeFiles/gasnub_core.dir/redistribution.cc.o"
  "CMakeFiles/gasnub_core.dir/redistribution.cc.o.d"
  "CMakeFiles/gasnub_core.dir/redistribution2d.cc.o"
  "CMakeFiles/gasnub_core.dir/redistribution2d.cc.o.d"
  "CMakeFiles/gasnub_core.dir/surface.cc.o"
  "CMakeFiles/gasnub_core.dir/surface.cc.o.d"
  "CMakeFiles/gasnub_core.dir/surface_io.cc.o"
  "CMakeFiles/gasnub_core.dir/surface_io.cc.o.d"
  "libgasnub_core.a"
  "libgasnub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
