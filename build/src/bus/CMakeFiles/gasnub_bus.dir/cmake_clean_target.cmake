file(REMOVE_RECURSE
  "libgasnub_bus.a"
)
