file(REMOVE_RECURSE
  "CMakeFiles/gasnub_bus.dir/dec8400_memory.cc.o"
  "CMakeFiles/gasnub_bus.dir/dec8400_memory.cc.o.d"
  "libgasnub_bus.a"
  "libgasnub_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
