# Empty dependencies file for gasnub_bus.
# This may be replaced when dependencies are built.
