file(REMOVE_RECURSE
  "libgasnub_sim.a"
)
