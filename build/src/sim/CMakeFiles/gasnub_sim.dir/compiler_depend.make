# Empty compiler generated dependencies file for gasnub_sim.
# This may be replaced when dependencies are built.
