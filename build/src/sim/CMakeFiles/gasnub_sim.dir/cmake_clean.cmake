file(REMOVE_RECURSE
  "CMakeFiles/gasnub_sim.dir/event_queue.cc.o"
  "CMakeFiles/gasnub_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/gasnub_sim.dir/logging.cc.o"
  "CMakeFiles/gasnub_sim.dir/logging.cc.o.d"
  "CMakeFiles/gasnub_sim.dir/rng.cc.o"
  "CMakeFiles/gasnub_sim.dir/rng.cc.o.d"
  "CMakeFiles/gasnub_sim.dir/stats.cc.o"
  "CMakeFiles/gasnub_sim.dir/stats.cc.o.d"
  "CMakeFiles/gasnub_sim.dir/units.cc.o"
  "CMakeFiles/gasnub_sim.dir/units.cc.o.d"
  "libgasnub_sim.a"
  "libgasnub_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
