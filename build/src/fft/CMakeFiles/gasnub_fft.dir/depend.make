# Empty dependencies file for gasnub_fft.
# This may be replaced when dependencies are built.
