file(REMOVE_RECURSE
  "libgasnub_fft.a"
)
