file(REMOVE_RECURSE
  "CMakeFiles/gasnub_fft.dir/fft1d.cc.o"
  "CMakeFiles/gasnub_fft.dir/fft1d.cc.o.d"
  "CMakeFiles/gasnub_fft.dir/fft2d_dist.cc.o"
  "CMakeFiles/gasnub_fft.dir/fft2d_dist.cc.o.d"
  "CMakeFiles/gasnub_fft.dir/vendor_model.cc.o"
  "CMakeFiles/gasnub_fft.dir/vendor_model.cc.o.d"
  "libgasnub_fft.a"
  "libgasnub_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
