file(REMOVE_RECURSE
  "libgasnub_remote.a"
)
