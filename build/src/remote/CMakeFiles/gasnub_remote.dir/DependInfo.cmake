
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remote/aapc.cc" "src/remote/CMakeFiles/gasnub_remote.dir/aapc.cc.o" "gcc" "src/remote/CMakeFiles/gasnub_remote.dir/aapc.cc.o.d"
  "/root/repo/src/remote/cray_engine.cc" "src/remote/CMakeFiles/gasnub_remote.dir/cray_engine.cc.o" "gcc" "src/remote/CMakeFiles/gasnub_remote.dir/cray_engine.cc.o.d"
  "/root/repo/src/remote/smp_pull.cc" "src/remote/CMakeFiles/gasnub_remote.dir/smp_pull.cc.o" "gcc" "src/remote/CMakeFiles/gasnub_remote.dir/smp_pull.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gasnub_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gasnub_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gasnub_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
