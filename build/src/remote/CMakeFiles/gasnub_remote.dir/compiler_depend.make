# Empty compiler generated dependencies file for gasnub_remote.
# This may be replaced when dependencies are built.
