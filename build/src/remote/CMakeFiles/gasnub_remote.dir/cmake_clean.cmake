file(REMOVE_RECURSE
  "CMakeFiles/gasnub_remote.dir/aapc.cc.o"
  "CMakeFiles/gasnub_remote.dir/aapc.cc.o.d"
  "CMakeFiles/gasnub_remote.dir/cray_engine.cc.o"
  "CMakeFiles/gasnub_remote.dir/cray_engine.cc.o.d"
  "CMakeFiles/gasnub_remote.dir/smp_pull.cc.o"
  "CMakeFiles/gasnub_remote.dir/smp_pull.cc.o.d"
  "libgasnub_remote.a"
  "libgasnub_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gasnub_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
