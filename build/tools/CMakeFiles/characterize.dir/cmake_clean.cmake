file(REMOVE_RECURSE
  "CMakeFiles/characterize.dir/characterize.cc.o"
  "CMakeFiles/characterize.dir/characterize.cc.o.d"
  "characterize"
  "characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
