file(REMOVE_RECURSE
  "CMakeFiles/calibrate_local.dir/calibrate_local.cc.o"
  "CMakeFiles/calibrate_local.dir/calibrate_local.cc.o.d"
  "calibrate_local"
  "calibrate_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
