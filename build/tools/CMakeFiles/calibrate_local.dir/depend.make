# Empty dependencies file for calibrate_local.
# This may be replaced when dependencies are built.
