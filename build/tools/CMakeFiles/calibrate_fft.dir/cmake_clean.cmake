file(REMOVE_RECURSE
  "CMakeFiles/calibrate_fft.dir/calibrate_fft.cc.o"
  "CMakeFiles/calibrate_fft.dir/calibrate_fft.cc.o.d"
  "calibrate_fft"
  "calibrate_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
