# Empty dependencies file for calibrate_fft.
# This may be replaced when dependencies are built.
