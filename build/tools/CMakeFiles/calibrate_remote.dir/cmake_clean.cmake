file(REMOVE_RECURSE
  "CMakeFiles/calibrate_remote.dir/calibrate_remote.cc.o"
  "CMakeFiles/calibrate_remote.dir/calibrate_remote.cc.o.d"
  "calibrate_remote"
  "calibrate_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
