# Empty dependencies file for calibrate_remote.
# This may be replaced when dependencies are built.
