file(REMOVE_RECURSE
  "CMakeFiles/fig07_t3e_fetch.dir/fig07_t3e_fetch.cc.o"
  "CMakeFiles/fig07_t3e_fetch.dir/fig07_t3e_fetch.cc.o.d"
  "fig07_t3e_fetch"
  "fig07_t3e_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_t3e_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
