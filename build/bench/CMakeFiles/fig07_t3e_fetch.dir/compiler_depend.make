# Empty compiler generated dependencies file for fig07_t3e_fetch.
# This may be replaced when dependencies are built.
