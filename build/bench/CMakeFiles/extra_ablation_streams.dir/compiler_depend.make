# Empty compiler generated dependencies file for extra_ablation_streams.
# This may be replaced when dependencies are built.
