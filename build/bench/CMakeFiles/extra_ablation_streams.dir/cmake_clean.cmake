file(REMOVE_RECURSE
  "CMakeFiles/extra_ablation_streams.dir/extra_ablation_streams.cc.o"
  "CMakeFiles/extra_ablation_streams.dir/extra_ablation_streams.cc.o.d"
  "extra_ablation_streams"
  "extra_ablation_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_ablation_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
