file(REMOVE_RECURSE
  "CMakeFiles/fig17_fft_comm.dir/fig17_fft_comm.cc.o"
  "CMakeFiles/fig17_fft_comm.dir/fig17_fft_comm.cc.o.d"
  "fig17_fft_comm"
  "fig17_fft_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_fft_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
