# Empty compiler generated dependencies file for fig17_fft_comm.
# This may be replaced when dependencies are built.
