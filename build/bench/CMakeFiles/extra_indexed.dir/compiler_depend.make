# Empty compiler generated dependencies file for extra_indexed.
# This may be replaced when dependencies are built.
