file(REMOVE_RECURSE
  "CMakeFiles/extra_indexed.dir/extra_indexed.cc.o"
  "CMakeFiles/extra_indexed.dir/extra_indexed.cc.o.d"
  "extra_indexed"
  "extra_indexed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_indexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
