file(REMOVE_RECURSE
  "CMakeFiles/extra_ablation_wbq.dir/extra_ablation_wbq.cc.o"
  "CMakeFiles/extra_ablation_wbq.dir/extra_ablation_wbq.cc.o.d"
  "extra_ablation_wbq"
  "extra_ablation_wbq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_ablation_wbq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
