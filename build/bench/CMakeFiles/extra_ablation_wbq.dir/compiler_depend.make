# Empty compiler generated dependencies file for extra_ablation_wbq.
# This may be replaced when dependencies are built.
