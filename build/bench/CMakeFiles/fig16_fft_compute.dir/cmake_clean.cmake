file(REMOVE_RECURSE
  "CMakeFiles/fig16_fft_compute.dir/fig16_fft_compute.cc.o"
  "CMakeFiles/fig16_fft_compute.dir/fig16_fft_compute.cc.o.d"
  "fig16_fft_compute"
  "fig16_fft_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_fft_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
