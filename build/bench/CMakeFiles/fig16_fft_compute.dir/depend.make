# Empty dependencies file for fig16_fft_compute.
# This may be replaced when dependencies are built.
