file(REMOVE_RECURSE
  "CMakeFiles/extra_redistribution.dir/extra_redistribution.cc.o"
  "CMakeFiles/extra_redistribution.dir/extra_redistribution.cc.o.d"
  "extra_redistribution"
  "extra_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
