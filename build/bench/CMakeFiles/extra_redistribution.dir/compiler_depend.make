# Empty compiler generated dependencies file for extra_redistribution.
# This may be replaced when dependencies are built.
