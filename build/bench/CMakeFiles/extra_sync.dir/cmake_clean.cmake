file(REMOVE_RECURSE
  "CMakeFiles/extra_sync.dir/extra_sync.cc.o"
  "CMakeFiles/extra_sync.dir/extra_sync.cc.o.d"
  "extra_sync"
  "extra_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
