# Empty compiler generated dependencies file for extra_sync.
# This may be replaced when dependencies are built.
