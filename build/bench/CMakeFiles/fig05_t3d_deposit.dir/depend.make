# Empty dependencies file for fig05_t3d_deposit.
# This may be replaced when dependencies are built.
