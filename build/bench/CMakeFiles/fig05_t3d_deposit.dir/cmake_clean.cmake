file(REMOVE_RECURSE
  "CMakeFiles/fig05_t3d_deposit.dir/fig05_t3d_deposit.cc.o"
  "CMakeFiles/fig05_t3d_deposit.dir/fig05_t3d_deposit.cc.o.d"
  "fig05_t3d_deposit"
  "fig05_t3d_deposit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_t3d_deposit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
