# Empty dependencies file for fig08_t3e_deposit.
# This may be replaced when dependencies are built.
