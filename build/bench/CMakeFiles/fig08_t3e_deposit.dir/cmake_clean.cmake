file(REMOVE_RECURSE
  "CMakeFiles/fig08_t3e_deposit.dir/fig08_t3e_deposit.cc.o"
  "CMakeFiles/fig08_t3e_deposit.dir/fig08_t3e_deposit.cc.o.d"
  "fig08_t3e_deposit"
  "fig08_t3e_deposit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_t3e_deposit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
