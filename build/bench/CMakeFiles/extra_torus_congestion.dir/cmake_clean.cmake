file(REMOVE_RECURSE
  "CMakeFiles/extra_torus_congestion.dir/extra_torus_congestion.cc.o"
  "CMakeFiles/extra_torus_congestion.dir/extra_torus_congestion.cc.o.d"
  "extra_torus_congestion"
  "extra_torus_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_torus_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
