# Empty compiler generated dependencies file for extra_torus_congestion.
# This may be replaced when dependencies are built.
