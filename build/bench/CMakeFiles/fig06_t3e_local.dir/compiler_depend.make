# Empty compiler generated dependencies file for fig06_t3e_local.
# This may be replaced when dependencies are built.
