file(REMOVE_RECURSE
  "CMakeFiles/fig06_t3e_local.dir/fig06_t3e_local.cc.o"
  "CMakeFiles/fig06_t3e_local.dir/fig06_t3e_local.cc.o.d"
  "fig06_t3e_local"
  "fig06_t3e_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_t3e_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
