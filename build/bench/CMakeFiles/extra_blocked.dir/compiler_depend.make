# Empty compiler generated dependencies file for extra_blocked.
# This may be replaced when dependencies are built.
