file(REMOVE_RECURSE
  "CMakeFiles/extra_blocked.dir/extra_blocked.cc.o"
  "CMakeFiles/extra_blocked.dir/extra_blocked.cc.o.d"
  "extra_blocked"
  "extra_blocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
