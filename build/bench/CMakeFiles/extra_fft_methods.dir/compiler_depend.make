# Empty compiler generated dependencies file for extra_fft_methods.
# This may be replaced when dependencies are built.
