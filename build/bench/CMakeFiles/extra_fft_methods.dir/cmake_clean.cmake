file(REMOVE_RECURSE
  "CMakeFiles/extra_fft_methods.dir/extra_fft_methods.cc.o"
  "CMakeFiles/extra_fft_methods.dir/extra_fft_methods.cc.o.d"
  "extra_fft_methods"
  "extra_fft_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_fft_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
