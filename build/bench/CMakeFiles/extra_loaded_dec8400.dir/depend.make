# Empty dependencies file for extra_loaded_dec8400.
# This may be replaced when dependencies are built.
