file(REMOVE_RECURSE
  "CMakeFiles/extra_loaded_dec8400.dir/extra_loaded_dec8400.cc.o"
  "CMakeFiles/extra_loaded_dec8400.dir/extra_loaded_dec8400.cc.o.d"
  "extra_loaded_dec8400"
  "extra_loaded_dec8400.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_loaded_dec8400.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
