# Empty dependencies file for extra_planner_validation.
# This may be replaced when dependencies are built.
