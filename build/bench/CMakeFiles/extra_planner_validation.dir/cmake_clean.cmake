file(REMOVE_RECURSE
  "CMakeFiles/extra_planner_validation.dir/extra_planner_validation.cc.o"
  "CMakeFiles/extra_planner_validation.dir/extra_planner_validation.cc.o.d"
  "extra_planner_validation"
  "extra_planner_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_planner_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
