# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_t3e_remote_copy.
