# Empty compiler generated dependencies file for fig14_t3e_remote_copy.
# This may be replaced when dependencies are built.
