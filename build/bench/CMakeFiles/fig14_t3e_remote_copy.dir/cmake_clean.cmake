file(REMOVE_RECURSE
  "CMakeFiles/fig14_t3e_remote_copy.dir/fig14_t3e_remote_copy.cc.o"
  "CMakeFiles/fig14_t3e_remote_copy.dir/fig14_t3e_remote_copy.cc.o.d"
  "fig14_t3e_remote_copy"
  "fig14_t3e_remote_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_t3e_remote_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
