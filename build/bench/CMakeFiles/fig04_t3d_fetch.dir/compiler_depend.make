# Empty compiler generated dependencies file for fig04_t3d_fetch.
# This may be replaced when dependencies are built.
