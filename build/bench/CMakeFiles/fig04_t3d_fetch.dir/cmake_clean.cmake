file(REMOVE_RECURSE
  "CMakeFiles/fig04_t3d_fetch.dir/fig04_t3d_fetch.cc.o"
  "CMakeFiles/fig04_t3d_fetch.dir/fig04_t3d_fetch.cc.o.d"
  "fig04_t3d_fetch"
  "fig04_t3d_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_t3d_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
