# Empty dependencies file for fig02_dec8400_remote.
# This may be replaced when dependencies are built.
