file(REMOVE_RECURSE
  "CMakeFiles/fig02_dec8400_remote.dir/fig02_dec8400_remote.cc.o"
  "CMakeFiles/fig02_dec8400_remote.dir/fig02_dec8400_remote.cc.o.d"
  "fig02_dec8400_remote"
  "fig02_dec8400_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dec8400_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
