file(REMOVE_RECURSE
  "CMakeFiles/fig12_dec8400_remote_copy.dir/fig12_dec8400_remote_copy.cc.o"
  "CMakeFiles/fig12_dec8400_remote_copy.dir/fig12_dec8400_remote_copy.cc.o.d"
  "fig12_dec8400_remote_copy"
  "fig12_dec8400_remote_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dec8400_remote_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
