# Empty dependencies file for fig12_dec8400_remote_copy.
# This may be replaced when dependencies are built.
