# Empty compiler generated dependencies file for extra_store_const.
# This may be replaced when dependencies are built.
