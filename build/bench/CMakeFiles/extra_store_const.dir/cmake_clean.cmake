file(REMOVE_RECURSE
  "CMakeFiles/extra_store_const.dir/extra_store_const.cc.o"
  "CMakeFiles/extra_store_const.dir/extra_store_const.cc.o.d"
  "extra_store_const"
  "extra_store_const.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_store_const.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
