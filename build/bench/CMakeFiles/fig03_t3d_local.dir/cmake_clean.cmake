file(REMOVE_RECURSE
  "CMakeFiles/fig03_t3d_local.dir/fig03_t3d_local.cc.o"
  "CMakeFiles/fig03_t3d_local.dir/fig03_t3d_local.cc.o.d"
  "fig03_t3d_local"
  "fig03_t3d_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_t3d_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
