# Empty compiler generated dependencies file for fig03_t3d_local.
# This may be replaced when dependencies are built.
