file(REMOVE_RECURSE
  "CMakeFiles/extra_fft_scalability.dir/extra_fft_scalability.cc.o"
  "CMakeFiles/extra_fft_scalability.dir/extra_fft_scalability.cc.o.d"
  "extra_fft_scalability"
  "extra_fft_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_fft_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
