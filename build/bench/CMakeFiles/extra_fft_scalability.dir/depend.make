# Empty dependencies file for extra_fft_scalability.
# This may be replaced when dependencies are built.
