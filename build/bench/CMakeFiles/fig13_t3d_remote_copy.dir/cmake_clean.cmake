file(REMOVE_RECURSE
  "CMakeFiles/fig13_t3d_remote_copy.dir/fig13_t3d_remote_copy.cc.o"
  "CMakeFiles/fig13_t3d_remote_copy.dir/fig13_t3d_remote_copy.cc.o.d"
  "fig13_t3d_remote_copy"
  "fig13_t3d_remote_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_t3d_remote_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
