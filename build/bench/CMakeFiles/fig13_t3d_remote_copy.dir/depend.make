# Empty dependencies file for fig13_t3d_remote_copy.
# This may be replaced when dependencies are built.
