# Empty dependencies file for fig01_dec8400_local.
# This may be replaced when dependencies are built.
