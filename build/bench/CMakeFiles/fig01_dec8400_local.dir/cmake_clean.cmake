file(REMOVE_RECURSE
  "CMakeFiles/fig01_dec8400_local.dir/fig01_dec8400_local.cc.o"
  "CMakeFiles/fig01_dec8400_local.dir/fig01_dec8400_local.cc.o.d"
  "fig01_dec8400_local"
  "fig01_dec8400_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_dec8400_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
