file(REMOVE_RECURSE
  "CMakeFiles/fig09_dec8400_copy.dir/fig09_dec8400_copy.cc.o"
  "CMakeFiles/fig09_dec8400_copy.dir/fig09_dec8400_copy.cc.o.d"
  "fig09_dec8400_copy"
  "fig09_dec8400_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dec8400_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
