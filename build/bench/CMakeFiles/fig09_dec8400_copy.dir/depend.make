# Empty dependencies file for fig09_dec8400_copy.
# This may be replaced when dependencies are built.
