# Empty dependencies file for extra_aapc_schedules.
# This may be replaced when dependencies are built.
