file(REMOVE_RECURSE
  "CMakeFiles/extra_aapc_schedules.dir/extra_aapc_schedules.cc.o"
  "CMakeFiles/extra_aapc_schedules.dir/extra_aapc_schedules.cc.o.d"
  "extra_aapc_schedules"
  "extra_aapc_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_aapc_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
