# Empty compiler generated dependencies file for fig15_fft_overall.
# This may be replaced when dependencies are built.
