file(REMOVE_RECURSE
  "CMakeFiles/fig15_fft_overall.dir/fig15_fft_overall.cc.o"
  "CMakeFiles/fig15_fft_overall.dir/fig15_fft_overall.cc.o.d"
  "fig15_fft_overall"
  "fig15_fft_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fft_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
