# Empty compiler generated dependencies file for fig10_t3d_copy.
# This may be replaced when dependencies are built.
