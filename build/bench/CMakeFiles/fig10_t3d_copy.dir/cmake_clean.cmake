file(REMOVE_RECURSE
  "CMakeFiles/fig10_t3d_copy.dir/fig10_t3d_copy.cc.o"
  "CMakeFiles/fig10_t3d_copy.dir/fig10_t3d_copy.cc.o.d"
  "fig10_t3d_copy"
  "fig10_t3d_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_t3d_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
