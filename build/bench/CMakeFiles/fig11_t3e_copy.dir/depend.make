# Empty dependencies file for fig11_t3e_copy.
# This may be replaced when dependencies are built.
