file(REMOVE_RECURSE
  "CMakeFiles/fig11_t3e_copy.dir/fig11_t3e_copy.cc.o"
  "CMakeFiles/fig11_t3e_copy.dir/fig11_t3e_copy.cc.o.d"
  "fig11_t3e_copy"
  "fig11_t3e_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_t3e_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
